//! Two-process networked deployment: the model provider and data
//! provider as separate processes exchanging [`pp_stream_runtime::link::Frame`]s
//! over real TCP sockets — the paper's testbed topology (model and data
//! providers on separate hosts), versus the in-process pipeline of
//! [`crate::PpStream`].
//!
//! ## Roles
//!
//! * [`ModelProvider`] — the server. Holds the scaled weights, executes
//!   the **linear** stages homomorphically under the data provider's
//!   public key, and manages obfuscation (permutation draw/invert),
//!   exactly as [`crate::protocol::LinearStage`] does in-process.
//! * [`NetworkedSession`] — the client (data provider). Holds the
//!   Paillier keypair and the inputs, runs the encrypt stage and the
//!   **non-linear** stages locally, and round-trips every linear stage
//!   through the server.
//!
//! ## Handshake and sessions
//!
//! Before any ciphertext flows the client sends a
//! [`HelloMsg`](crate::messages::HelloMsg): protocol version, public-key
//! bytes + fingerprint, and a digest of the merged-stage topology. The
//! server answers [`AcceptMsg`](crate::messages::AcceptMsg) (echoing the
//! agreed parameters plus a server-assigned **session ID**) or
//! [`RejectMsg`](crate::messages::RejectMsg) naming the mismatch, so a
//! client built against a different model layout fails fast with
//! `Transport { kind: Handshake, .. }` instead of corrupting an
//! inference mid-stream.
//!
//! ## Fault tolerance (DESIGN.md §5)
//!
//! The server keeps a bounded, TTL-evicting session table. When a
//! connection dies mid-stream the client transparently reconnects (with
//! the configured [`RetryPolicy`](pp_stream_runtime::RetryPolicy)),
//! presents [`ResumeMsg`](crate::messages::ResumeMsg) with its count of
//! fully completed items, and replays only the in-flight item. After
//! each completed item the client sends a fire-and-forget
//! [`AckMsg`](crate::messages::AckMsg) raising the server's exactly-once
//! floor: a round-0 request below the floor is a protocol violation, so
//! a delivered item's Paillier evaluations are never silently repeated.
//! A deliberate [`ByeMsg`](crate::messages::ByeMsg) ends the session;
//! a bare EOF leaves it resumable until the TTL expires.
//!
//! Replay is sound because every stage derives its randomness
//! deterministically from `(seed, seq)` — re-running an item from round
//! 0 regenerates bit-identical ciphertexts and permutations, which the
//! chaos tests assert.
//!
//! ## Frame exchange
//!
//! Each inference request runs the in-process protocol's rounds over the
//! socket: the client serializes the current
//! [`EncTensorMsg`](crate::messages::EncTensorMsg) through the wire
//! codec and ships it in a frame whose transport `seq` is stamped by
//! [`TcpFrameSender::send_payload`] (strictly increasing per direction,
//! validated by the receiving side); the request's own `seq` travels
//! inside the message, decoupled from transport framing. Requests are
//! processed sequentially in this version — cross-request pipelining
//! over the socket is future work; the in-process pipeline remains the
//! throughput path.

use crate::encapsulate::{encapsulate_with, MergedStage, StageRole};
use crate::journal::{Journal, JournalConfig, JournalRecord, Replay};
use crate::messages::{
    AcceptMsg, AckMsg, ByeMsg, EncTensorMsg, HelloMsg, ItemErrorKind, ItemErrorMsg, MsgTag,
    PackedTensorMsg, PlainTensorMsg, RejectCode, RejectMsg, ResumeMsg, PROTOCOL_VERSION,
};
use crate::packed::{self, PACKED_PERM_BIT};
use crate::protocol::{EncryptStage, LinearStage, NonLinearStage, PartitionMode, PermStore};
use crate::governor::{Governor, GovernorConfig};
use crate::session::RunReport;
use crate::CoreError;
use bytes::Bytes;
use parking_lot::Mutex;
use pp_bigint::BigUint;
use pp_nn::scaling::{ScaledModel, ScaledOp};
use pp_paillier::packing::PackingSpec;
use pp_paillier::{Keypair, PublicKey, RandomnessPool};
#[cfg(feature = "fault-injection")]
use pp_stream_runtime::fault::{FaultPlan, FaultReceiver, FaultSender, FaultState};
use pp_stream_runtime::link::Frame;
use pp_stream_runtime::wire::{from_frame, to_frame};
use pp_stream_runtime::{
    tcp, FrameReceiver, FrameSender, StreamError, TcpConfig, TcpFrameReceiver, TcpFrameSender,
    TransportErrorKind, WorkerPool,
};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::evloop;

/// Configuration shared by both ends of a deployment.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Paillier key size in bits (client-side keygen).
    pub key_bits: usize,
    /// Determinism seed for keys, permutations, and encryption
    /// randomness.
    pub seed: u64,
    /// Worker threads per side.
    pub threads: usize,
    /// Merge adjacent same-type primitive layers (Sec. IV-B). Must match
    /// between peers — it shapes the topology digest.
    pub merge_stages: bool,
    /// Socket knobs: connect retry/backoff, read/write timeouts, seq
    /// validation.
    pub tcp: TcpConfig,
    /// How many reconnect-and-resume cycles a client survives per
    /// request before giving up with the underlying transport error.
    pub max_resumes: u32,
    /// Server-side: how long a dropped session stays resumable.
    pub session_ttl: Duration,
    /// Server-side: resumable-session table bound; beyond it the
    /// least-recently-seen session is evicted.
    pub session_capacity: usize,
    /// Server-side: per-session cap on items with linear rounds in
    /// flight. An item whose round 0 arrives while the session is at the
    /// cap is **shed** with a per-item [`ItemErrorKind::Shed`] reply
    /// instead of queueing unboundedly. A zero cap sheds every item —
    /// a drain mode useful for overload drills.
    pub max_inflight_items: usize,
    /// Client-side: per-item end-to-end deadline budget. Stamped into
    /// every linear-round frame as the *remaining* budget in
    /// milliseconds (relative durations, never wall timestamps, so
    /// client/server clock skew is irrelevant); the server sheds an item
    /// whose budget has run out with an
    /// [`ItemErrorKind::DeadlineExpired`] reply. `None` disables
    /// deadlines entirely.
    pub item_deadline: Option<Duration>,
    /// Client-side stall watchdog: if a linear-round reply takes longer
    /// than this window, the item is treated as stalled
    /// ([`StreamError::Stalled`]) and recovered by reconnect-and-resume,
    /// instead of waiting out the full TCP read timeout. `None` disables
    /// the watchdog.
    pub stall_window: Option<Duration>,
    /// Client-side deterministic fault injection (tests and chaos
    /// drills); `None` leaves the transport untouched. The server reads
    /// [`FaultPlan::poison_seq`] from its own config to drive the
    /// poison-item quarantine boundary.
    #[cfg(feature = "fault-injection")]
    pub fault: Option<FaultPlan>,
    /// Client-side: slot width (bits) for **batch-packed ciphertexts**
    /// (DESIGN.md §8). Non-zero proposes packing in the handshake; the
    /// server accepts only when the layout fits its model's op budget,
    /// and either side's `0` keeps the stream on the per-item protocol.
    /// The `data_provider` example exposes this as `PP_PACK_BITS`.
    pub pack_slot_bits: usize,
    /// Client-side: requests gathered per packed batch. `0` means "fill
    /// every slot the negotiated layout offers"; values above the slot
    /// count are clamped to it. The `data_provider` example exposes this
    /// as `PP_PACK_BATCH`.
    pub pack_batch: usize,
    /// Server-side resource limits for adversarial peers (frame
    /// ceilings, write-backlog cap, global memory budget — DESIGN.md
    /// §10). `None` reads `PP_MAX_FRAME` / `PP_WRITE_BACKLOG` /
    /// `PP_MEM_BUDGET` at provider construction; tests pin explicit
    /// values to avoid env races.
    pub governor: Option<GovernorConfig>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            key_bits: 512,
            seed: 0x9950_57EA,
            threads: 2,
            merge_stages: true,
            tcp: TcpConfig::new(),
            max_resumes: 8,
            session_ttl: Duration::from_secs(300),
            session_capacity: 1024,
            max_inflight_items: 256,
            item_deadline: None,
            stall_window: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
            pack_slot_bits: 0,
            pack_batch: 0,
            governor: None,
        }
    }
}

impl NetConfig {
    /// A fast configuration for tests: tiny key, bounded timeouts, quick
    /// reconnect backoff.
    pub fn small_test(key_bits: usize) -> Self {
        NetConfig {
            key_bits,
            seed: 42,
            tcp: TcpConfig::new()
                .with_timeouts(Duration::from_secs(30), Duration::from_secs(30))
                .with_retry(pp_stream_runtime::RetryPolicy {
                    max_attempts: 3,
                    base_delay: Duration::from_millis(5),
                    max_delay: Duration::from_millis(40),
                    jitter: true,
                }),
            ..Default::default()
        }
    }
}

/// Client-side transport statistics, surfaced through
/// [`RunReport::transport`] and returned by
/// [`NetworkedSession::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct TransportReport {
    /// Frames sent to the model provider.
    pub frames_sent: u64,
    /// Frames received from the model provider.
    pub frames_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Connection attempts the retry loops used (1 = first try, with no
    /// reconnects).
    pub connect_attempts: u32,
    /// Successful reconnect-and-resume cycles after a mid-stream
    /// transport failure.
    pub reconnects: u64,
    /// Times the active provider address changed: a connect or resume
    /// failed against the current address and the client moved on to
    /// the next one in its ordered list
    /// ([`NetworkedSession::connect_any`]).
    pub failovers: u64,
    /// Items whose linear rounds had partially run before a failure and
    /// were replayed from round 0 after a resume.
    pub items_replayed: u64,
    /// Faults the injection layer fired (0 without a
    /// [`NetConfig::fault`] plan).
    pub faults_injected: u64,
    /// Busy rejections absorbed by the admission-control backoff loops
    /// (at connect and at resume).
    pub rejected_busy: u64,
    /// Linear-round replies that arrived later than
    /// [`NetConfig::stall_window`] and were recovered by
    /// reconnect-and-resume.
    pub stalls: u64,
    /// Items that failed with an expired end-to-end deadline — shed
    /// client-side before a send, or reported by the server via
    /// [`ItemErrorKind::DeadlineExpired`].
    pub deadline_expired: u64,
    /// Items the server quarantined after a poison panic
    /// ([`ItemErrorKind::Quarantined`] replies received).
    pub quarantined: u64,
    /// Items the server shed at its per-session in-flight cap
    /// ([`ItemErrorKind::Shed`] replies received).
    pub shed: u64,
    /// Packed linear rounds completed (one per batch per linear stage).
    pub packed_rounds: u64,
    /// Items served inside packed batches end-to-end (no fallback).
    pub packed_items: u64,
    /// Packed batches that fell back to per-item requests — a server
    /// [`ItemErrorKind::PackedAbort`], a transport failure mid-batch, or
    /// a client-side packing error. Each member is then replayed
    /// unpacked, so fallbacks cost latency, never results.
    pub packed_fallbacks: u64,
    /// Whether the connection ended without a transport error.
    pub clean_shutdown: bool,
}

/// Server-side statistics, aggregated over every connection a
/// [`ModelProvider::serve_listener`] or [`ModelProvider::serve_forever`]
/// call handled.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Inference request streams completed (a replayed item counts each
    /// time its last linear round finishes).
    pub requests: u64,
    /// Frames received from data providers (handshakes included).
    pub frames_in: u64,
    /// Frames sent to data providers.
    pub frames_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Connections accepted (handshaken or not).
    pub connections: u64,
    /// Connections that opened with a valid [`ResumeMsg`].
    pub resumed_sessions: u64,
    /// Handshakes rejected or never completed (bad hello, unknown
    /// session, EOF before the first frame). The server keeps serving.
    pub rejected_handshakes: u64,
    /// Connections that died with a transport/protocol error after the
    /// handshake. The session stays resumable; the server keeps serving.
    pub failed_connections: u64,
    /// Worker threads that panicked while serving a connection
    /// (isolated; the server keeps serving).
    pub panicked_connections: u64,
    /// Items whose round 0 arrived again after a resume (the client
    /// replaying in-flight work — never below the acked floor).
    pub replayed_items: u64,
    /// Connections refused at the admission-control session cap with a
    /// [`RejectCode::Busy`] reply ([`ServeOptions::max_sessions`]).
    pub rejected_busy: u64,
    /// Items answered with [`ItemErrorKind::DeadlineExpired`]: their
    /// end-to-end budget ran out before the linear stage started.
    pub deadline_expired: u64,
    /// [`ItemErrorKind::Quarantined`] replies sent: a poison item's
    /// first panic plus every refused replay of it.
    pub quarantined: u64,
    /// Items answered with [`ItemErrorKind::Shed`] at the per-session
    /// in-flight cap ([`NetConfig::max_inflight_items`]).
    pub shed: u64,
    /// Packed linear rounds executed (one per batch per linear stage).
    pub packed_rounds: u64,
    /// Packed batches aborted with [`ItemErrorKind::PackedAbort`]
    /// (deadline, shed, quarantined member, panic, or a packing error);
    /// the client replays the members unpacked.
    pub packed_aborts: u64,
    /// Cross-session fused dispatches executed by the event loop's
    /// batcher (one per gather window that closed with work;
    /// [`ServeOptions::gather_window`]).
    pub batched_rounds: u64,
    /// Linear-round items coalesced into those fused dispatches. Equal
    /// to `batched_rounds` when every window gathered a single item —
    /// higher means cross-session amortization actually happened.
    pub batched_items: u64,
    /// Nanoseconds spent executing linear rounds (pool dispatch
    /// included) — per-item serving cost, comparable across
    /// per-session and cross-session-batched serving.
    pub exec_ns: u64,
    /// Frames refused at the resource governor's ceiling — the peer
    /// sent a length prefix above its pre-auth or negotiated frame
    /// limit (`Transport { kind: FrameLimit }`). The payload was never
    /// allocated; the connection fails, the session stays resumable.
    pub oversize_frames: u64,
    /// Connections evicted as slow consumers: their reply backlog
    /// crossed [`GovernorConfig::write_backlog`] because the peer
    /// stopped reading. The session entry survives for a journal-backed
    /// resume.
    pub evicted_slow: u64,
    /// Connections busy-rejected because the endpoint's buffered bytes
    /// exceeded the global [`GovernorConfig::mem_budget`] (the
    /// admission-control analogue of `rejected_busy`, driven by memory
    /// instead of session count).
    pub budget_rejected: u64,
    /// The most recent per-connection error, for operator visibility.
    pub last_error: Option<String>,
    /// True when at least one client ended its session deliberately
    /// ([`ByeMsg`]) rather than by dropping the connection.
    pub clean_shutdown: bool,
}

impl ServeReport {
    /// Folds another report (e.g. one worker's connection) into this one.
    pub fn merge(&mut self, other: &ServeReport) {
        self.requests += other.requests;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.connections += other.connections;
        self.resumed_sessions += other.resumed_sessions;
        self.rejected_handshakes += other.rejected_handshakes;
        self.failed_connections += other.failed_connections;
        self.panicked_connections += other.panicked_connections;
        self.replayed_items += other.replayed_items;
        self.rejected_busy += other.rejected_busy;
        self.deadline_expired += other.deadline_expired;
        self.quarantined += other.quarantined;
        self.shed += other.shed;
        self.packed_rounds += other.packed_rounds;
        self.packed_aborts += other.packed_aborts;
        self.batched_rounds += other.batched_rounds;
        self.batched_items += other.batched_items;
        self.exec_ns += other.exec_ns;
        self.oversize_frames += other.oversize_frames;
        self.evicted_slow += other.evicted_slow;
        self.budget_rejected += other.budget_rejected;
        if other.last_error.is_some() {
            self.last_error = other.last_error.clone();
        }
        self.clean_shutdown |= other.clean_shutdown;
    }
}

/// FNV-1a 64-bit — stable, dependency-free fingerprint for handshake
/// digests (not cryptographic; the handshake detects misconfiguration,
/// not adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a public key's modulus bytes.
pub fn pk_fingerprint(pk_n: &[u8]) -> u64 {
    fnv1a64(pk_n)
}

/// Digest of the merged-stage topology: stage roles, shapes, op kinds
/// and their cheap structural parameters (window sizes, rescales, weight
/// element counts) — **not** the weight values, which never leave the
/// model provider. Two peers agree on this digest iff they encapsulated
/// the same model architecture at the same scaling factor.
pub fn topology_digest(stages: &[MergedStage], factor: i64) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&factor.to_le_bytes());
    buf.extend_from_slice(&(stages.len() as u64).to_le_bytes());
    for stage in stages {
        buf.push(match stage.role {
            StageRole::Linear => 1,
            StageRole::NonLinear => 2,
        });
        for shape in [&stage.input_shape, &stage.output_shape] {
            buf.extend_from_slice(&(shape.dims().len() as u64).to_le_bytes());
            for &d in shape.dims() {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
        }
        buf.extend_from_slice(&(stage.ops.len() as u64).to_le_bytes());
        for op in &stage.ops {
            match op {
                ScaledOp::Conv2d { weights, bias, .. } => {
                    buf.push(1);
                    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
                    buf.extend_from_slice(&(bias.len() as u64).to_le_bytes());
                }
                ScaledOp::Dense { weights, bias } => {
                    buf.push(2);
                    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
                    buf.extend_from_slice(&(bias.len() as u64).to_le_bytes());
                }
                ScaledOp::Affine { scale, .. } => {
                    buf.push(3);
                    buf.extend_from_slice(&(scale.len() as u64).to_le_bytes());
                }
                ScaledOp::ScaleMul { alpha } => {
                    buf.push(4);
                    buf.extend_from_slice(&alpha.to_le_bytes());
                }
                ScaledOp::ReLU { rescale } => {
                    buf.push(5);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::Sigmoid { rescale } => {
                    buf.push(6);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::SoftMax { rescale } => {
                    buf.push(7);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::MaxPool { window, stride, rescale } => {
                    buf.push(8);
                    buf.extend_from_slice(&(*window as u64).to_le_bytes());
                    buf.extend_from_slice(&(*stride as u64).to_le_bytes());
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::SumPool { window, stride } => {
                    buf.push(9);
                    buf.extend_from_slice(&(*window as u64).to_le_bytes());
                    buf.extend_from_slice(&(*stride as u64).to_le_bytes());
                }
                ScaledOp::Flatten => buf.push(10),
            }
        }
    }
    fnv1a64(&buf)
}

fn handshake_err(context: impl Into<String>) -> StreamError {
    StreamError::transport(TransportErrorKind::Handshake, context)
}

/// Best-effort extraction of a panic payload's message for the
/// quarantine reply.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Fault-injection hook (compiled out without the feature)
// ---------------------------------------------------------------------------

/// Client-side handle on the shared fault state; `()` when the
/// `fault-injection` feature is off, so the session struct and the
/// reconnect path carry zero cost in release deployments.
#[cfg(feature = "fault-injection")]
type FaultHook = Option<Arc<Mutex<FaultState>>>;
#[cfg(not(feature = "fault-injection"))]
type FaultHook = ();

#[cfg(feature = "fault-injection")]
fn fault_hook(config: &NetConfig) -> FaultHook {
    config.fault.clone().filter(FaultPlan::is_active).map(FaultPlan::into_state)
}
#[cfg(not(feature = "fault-injection"))]
fn fault_hook(_config: &NetConfig) -> FaultHook {}

/// Boxes the freshly handshaken halves, wrapping them in the fault
/// injectors when a plan is active. Handshake and resume frames travel
/// on the raw halves *before* this call, so injected kills never starve
/// the recovery path itself.
#[cfg(feature = "fault-injection")]
fn wrap_transport(
    tx: TcpFrameSender,
    rx: TcpFrameReceiver,
    hook: &FaultHook,
) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
    match hook {
        Some(state) => (
            Box::new(FaultSender::new(tx, Arc::clone(state))),
            Box::new(FaultReceiver::new(rx, Arc::clone(state))),
        ),
        None => (Box::new(tx), Box::new(rx)),
    }
}
#[cfg(not(feature = "fault-injection"))]
fn wrap_transport(
    tx: TcpFrameSender,
    rx: TcpFrameReceiver,
    _hook: &FaultHook,
) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
    (Box::new(tx), Box::new(rx))
}

#[cfg(feature = "fault-injection")]
fn revive_fault(hook: &FaultHook) {
    if let Some(state) = hook {
        state.lock().revive();
    }
}
#[cfg(not(feature = "fault-injection"))]
fn revive_fault(_hook: &FaultHook) {}

#[cfg(feature = "fault-injection")]
fn fault_count(hook: &FaultHook) -> u64 {
    hook.as_ref().map(|s| s.lock().faults_injected()).unwrap_or(0)
}
#[cfg(not(feature = "fault-injection"))]
fn fault_count(_hook: &FaultHook) -> u64 {
    0
}

// ---------------------------------------------------------------------------
// Session table (server side)
// ---------------------------------------------------------------------------

/// Per-session resume state the server retains across connections.
#[derive(Clone, Debug)]
struct SessionEntry {
    pk_n: Vec<u8>,
    pk_fingerprint: u64,
    topology: u64,
    /// Items `0..acked` are client-confirmed delivered — the
    /// exactly-once floor. Round 0 below it is a protocol violation.
    acked: u64,
    /// Items `0..started` have begun round 0 at least once; round 0 in
    /// `acked..started` is a legitimate post-resume replay.
    started: u64,
    /// Seqs whose linear execution panicked. Outlives the connection:
    /// replaying a quarantined item after a resume is refused with a
    /// fresh [`ItemErrorKind::Quarantined`] reply, never re-executed.
    quarantined: HashSet<u64>,
    last_seen: Instant,
}

/// Bounded, TTL-evicting table of resumable sessions, shared by every
/// connection a provider serves.
struct SessionTable {
    ttl: Duration,
    capacity: usize,
    next_id: AtomicU64,
    inner: Mutex<HashMap<u64, SessionEntry>>,
    /// Crash journal: when armed, every mutation below appends its
    /// record *before* the mutator returns (and thus before any reply
    /// acknowledging the transition leaves the process). Locked after
    /// `inner`, never before.
    journal: Mutex<Option<Journal>>,
    /// Appends that failed with an I/O error. Serving continues — a
    /// full disk degrades durability, not availability — but the count
    /// is surfaced so operators can see the journal has gaps.
    journal_errors: AtomicU64,
}

impl SessionTable {
    fn new(ttl: Duration, capacity: usize) -> Self {
        SessionTable {
            ttl,
            capacity: capacity.max(1),
            // Session 0 is never issued, so a zeroed client can't
            // accidentally resume a real stream.
            next_id: AtomicU64::new(1),
            inner: Mutex::new(HashMap::new()),
            journal: Mutex::new(None),
            journal_errors: AtomicU64::new(0),
        }
    }

    /// Appends one record if the journal is armed, counting (not
    /// propagating) I/O failures.
    fn journal_append(&self, record: &JournalRecord) {
        let mut slot = self.journal.lock();
        if let Some(journal) = slot.as_mut() {
            if journal.append(record).is_err() {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Rebuilds the table from a journal replay and arms `journal` for
    /// every subsequent mutation. Returns the number of sessions alive
    /// at the crash point. Replay order is append order, and every
    /// record's application is monotone (floors only rise, quarantine
    /// only grows), so the end state is exactly the crash state.
    fn restore(&self, journal: Journal, replay: &Replay) -> usize {
        let mut map = self.inner.lock();
        let now = Instant::now();
        let mut max_id = 0u64;
        for record in &replay.records {
            match record {
                JournalRecord::Created { session, pk_n, pk_fingerprint, topology, .. } => {
                    max_id = max_id.max(*session);
                    map.insert(
                        *session,
                        SessionEntry {
                            pk_n: pk_n.clone(),
                            pk_fingerprint: *pk_fingerprint,
                            topology: *topology,
                            acked: 0,
                            started: 0,
                            quarantined: HashSet::new(),
                            // Restored sessions get a fresh TTL: their
                            // pre-crash `last_seen` was wall time in a
                            // dead process, and their clients are
                            // exactly the ones about to resume.
                            last_seen: now,
                        },
                    );
                }
                JournalRecord::Acked { session, acked } => {
                    if let Some(e) = map.get_mut(session) {
                        e.acked = e.acked.max(*acked);
                        e.started = e.started.max(e.acked);
                    }
                }
                JournalRecord::Started { session, started } => {
                    if let Some(e) = map.get_mut(session) {
                        e.started = e.started.max(*started);
                    }
                }
                JournalRecord::Quarantined { session, seq } => {
                    if let Some(e) = map.get_mut(session) {
                        e.quarantined.insert(*seq);
                    }
                }
                JournalRecord::Removed { session } => {
                    map.remove(session);
                }
            }
        }
        // New sessions are issued above every ID the journal mentions,
        // so a pre-crash client can never collide with a post-restart
        // one. (Every journaled session has a Created record: replay
        // only ever drops a *suffix*, and Created precedes all other
        // records of its session.)
        self.next_id.fetch_max(max_id + 1, Ordering::Relaxed);
        *self.journal.lock() = Some(journal);
        map.len()
    }

    fn evict_expired(&self, map: &mut HashMap<u64, SessionEntry>) {
        let now = Instant::now();
        let expired: Vec<u64> = map
            .iter()
            .filter(|(_, e)| now.duration_since(e.last_seen) > self.ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            map.remove(&id);
            self.journal_append(&JournalRecord::Removed { session: id });
        }
    }

    /// Registers a fresh session, evicting expired entries and — at
    /// capacity — the least-recently-seen live one.
    fn create(
        &self,
        pk_n: Vec<u8>,
        pk_fingerprint: u64,
        topology: u64,
        pack: Option<PackingSpec>,
    ) -> u64 {
        let mut map = self.inner.lock();
        self.evict_expired(&mut map);
        if map.len() >= self.capacity {
            if let Some(oldest) = map.iter().min_by_key(|(_, e)| e.last_seen).map(|(&id, _)| id) {
                map.remove(&oldest);
                self.journal_append(&JournalRecord::Removed { session: oldest });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.journal_append(&JournalRecord::Created {
            session: id,
            pk_n: pk_n.clone(),
            pk_fingerprint,
            topology,
            pack: pack.map(|s| (s.slot_bits as u32, s.slots as u32, s.op_budget)),
        });
        map.insert(
            id,
            SessionEntry {
                pk_n,
                pk_fingerprint,
                topology,
                acked: 0,
                started: 0,
                quarantined: HashSet::new(),
                last_seen: Instant::now(),
            },
        );
        id
    }

    /// Validates a resume and syncs the ack floor to the client's count.
    fn resume(&self, session: u64, items_done: u64, topology: u64) -> Result<SessionEntry, String> {
        let mut map = self.inner.lock();
        self.evict_expired(&mut map);
        let entry = map
            .get_mut(&session)
            .ok_or_else(|| format!("resume rejected: session {session} is unknown or expired"))?;
        if entry.topology != topology {
            return Err(format!(
                "resume rejected: topology digest {topology:#018x} does not match session \
                 {session}'s {:#018x}",
                entry.topology
            ));
        }
        if items_done < entry.acked {
            return Err(format!(
                "resume rejected: client reports {items_done} items done but {} are already \
                 acked — replaying them would break exactly-once delivery",
                entry.acked
            ));
        }
        if items_done > entry.acked {
            self.journal_append(&JournalRecord::Acked { session, acked: items_done });
        }
        entry.acked = items_done;
        entry.started = entry.started.max(entry.acked);
        entry.last_seen = Instant::now();
        Ok(entry.clone())
    }

    /// Raises the exactly-once floor from a client ack.
    fn ack(&self, session: u64, items_done: u64) {
        let mut map = self.inner.lock();
        if let Some(e) = map.get_mut(&session) {
            if items_done > e.acked {
                e.acked = items_done;
                e.started = e.started.max(e.acked);
                self.journal_append(&JournalRecord::Acked { session, acked: items_done });
            }
            e.last_seen = Instant::now();
        }
    }

    /// Gate for an item's first linear round. `Ok(true)` means the item
    /// is a post-resume replay; `Err` means the floor was violated.
    fn on_round0(&self, session: u64, seq: u64) -> Result<bool, String> {
        let mut map = self.inner.lock();
        let e = map
            .get_mut(&session)
            .ok_or_else(|| format!("session {session} vanished mid-connection"))?;
        if seq < e.acked {
            return Err(format!(
                "exactly-once violation: request {seq} restarted below the acked floor {}",
                e.acked
            ));
        }
        let replayed = seq < e.started;
        if !replayed {
            e.started = seq + 1;
            self.journal_append(&JournalRecord::Started { session, started: e.started });
        }
        e.last_seen = Instant::now();
        Ok(replayed)
    }

    /// Marks an item as poison: its execution panicked, and no replay of
    /// it will ever be executed again.
    fn quarantine(&self, session: u64, seq: u64) {
        let mut map = self.inner.lock();
        if let Some(e) = map.get_mut(&session) {
            e.quarantined.insert(seq);
            e.last_seen = Instant::now();
            self.journal_append(&JournalRecord::Quarantined { session, seq });
        }
    }

    /// Whether an item is quarantined (its replay must be refused).
    fn is_quarantined(&self, session: u64, seq: u64) -> bool {
        self.inner.lock().get(&session).is_some_and(|e| e.quarantined.contains(&seq))
    }

    /// Refreshes a session's liveness clock without moving any floor.
    /// Called for *every* frame a connection delivers — including
    /// keepalive acks and mid-round tensor frames — so a session whose
    /// connection is open but idle past the TTL is never evicted out
    /// from under its own live connection.
    fn touch(&self, session: u64) {
        if let Some(e) = self.inner.lock().get_mut(&session) {
            e.last_seen = Instant::now();
        }
    }

    /// Ends a session deliberately (client Bye).
    fn remove(&self, session: u64) {
        let mut map = self.inner.lock();
        if map.remove(&session).is_some() {
            self.journal_append(&JournalRecord::Removed { session });
        }
    }

    /// Live (unexpired, unremoved) sessions. Soak tests use this to
    /// assert a drained server leaks no session state.
    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

// ---------------------------------------------------------------------------
// Model provider (server)
// ---------------------------------------------------------------------------

/// How one served connection ended.
enum ConnOutcome {
    /// The client ended the session with [`ByeMsg`]; its state is gone.
    Clean,
    /// The socket closed without a Bye; the session stays resumable.
    Dropped,
    /// The handshake was rejected (or never arrived).
    Rejected,
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------
//
// One served connection is a state machine over decoded frames: opening
// frame -> `open_conn`, every later frame -> `on_frame`, and each
// linear-round execution -> `run_job` + `on_exec_done`. The blocking
// `handle_conn` driver and the readiness event loop both run this exact
// machine, so the two serving paths cannot drift apart semantically —
// the event loop only changes *when* frames arrive and *where* jobs
// execute (inline on a shard, or coalesced across sessions in the
// batcher), never what they mean.

/// An outbound reply produced by the state machine, queued by the
/// driver. Byte/frame counters are charged when the reply is built.
struct Reply {
    payload: Bytes,
    /// Stage context attached to a transport error if the send fails.
    context: String,
    /// Reject frames are fire-and-forget — the peer may already be gone
    /// and a send failure must not fail the server-side bookkeeping.
    best_effort: bool,
}

/// Per-connection serving state after an accepted Hello/Resume.
struct ConnState {
    session: u64,
    /// Negotiated packed layout (always `None` on resumed connections).
    packing: Option<PackingSpec>,
    /// Per-round linear executors, shared with in-flight jobs so a
    /// batched execution can outlive a borrow of the connection.
    execs: Arc<Vec<LinearStage>>,
    /// Each in-flight request's next linear round index (per
    /// connection: a replay after a reconnect restarts at round 0).
    next_round: HashMap<u64, usize>,
    /// Packed batches keyed by their first member's seq: the member
    /// list (pinned at round 0) and the next round index.
    next_packed: HashMap<u64, (Vec<u64>, usize)>,
    /// Governor-derived frame ceiling for this connection, computed
    /// from the handshake (key width × topology width × pack slots).
    /// The driver raises the receiver's limit from the pre-auth cap to
    /// this once the handshake is accepted.
    frame_ceiling: usize,
}

/// Outcome of absorbing a connection's opening frame.
enum Opened {
    Serving(Box<ConnState>),
    Rejected,
}

/// What the driver must do after the state machine absorbed one frame.
enum FrameDisposition {
    /// Send these replies (possibly none) and keep reading.
    Continue(Vec<Reply>),
    /// Run this linear-round job, then feed the outcome back through
    /// [`ModelProvider::on_exec_done`].
    Execute(ExecJob),
    /// The client said Bye; close cleanly.
    Clean,
}

/// A validated, admitted linear-round execution, detached from its
/// connection so it can run anywhere (inline, shard, or cross-session
/// batcher).
struct ExecJob {
    round: usize,
    kind: JobKind,
    execs: Arc<Vec<LinearStage>>,
    /// Chaos driver: this job panics inside execution.
    #[cfg(feature = "fault-injection")]
    poison: bool,
}

enum JobKind {
    Item { msg: EncTensorMsg },
    Packed { msg: PackedTensorMsg },
}

/// Identity of a job, kept by the driver while the job runs.
enum JobMeta {
    Item { seq: u64, round: usize },
    Packed { key: u64, members: u64, round: usize },
}

/// Execution output, still wrapped in the stage's own error type.
enum ExecOut {
    Item(Result<EncTensorMsg, StreamError>),
    Packed(Result<PackedTensorMsg, StreamError>),
}

/// `Err` carries a trapped panic payload (the poison-item boundary).
type ExecOutcome = std::thread::Result<ExecOut>;

/// Runs one admitted job on `pool`, trapping panics. Pure compute: no
/// session or report state is touched, which is what makes the job safe
/// to ship to the cross-session batcher.
fn run_job(job: ExecJob, pool: &WorkerPool) -> (JobMeta, ExecOutcome) {
    #[cfg(feature = "fault-injection")]
    let poison = job.poison;
    let ExecJob { round, kind, execs, .. } = job;
    let exec = &execs[round];
    match kind {
        JobKind::Item { msg } => {
            let seq = msg.seq;
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                #[cfg(feature = "fault-injection")]
                if poison {
                    panic!("injected poison item {seq}");
                }
                ExecOut::Item(exec.execute(msg, pool))
            }));
            (JobMeta::Item { seq, round }, outcome)
        }
        JobKind::Packed { msg } => {
            let key = msg.seqs[0];
            let members = msg.seqs.len() as u64;
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                #[cfg(feature = "fault-injection")]
                if poison {
                    panic!("injected poison item in packed batch {key}");
                }
                ExecOut::Packed(packed::execute_packed_linear(exec, msg))
            }));
            (JobMeta::Packed { key, members, round }, outcome)
        }
    }
}

/// Sends queued replies over the blocking transport. Best-effort
/// replies swallow send errors; the rest fail the connection with the
/// reply's stage context.
fn send_replies(tx: &mut TcpFrameSender, replies: Vec<Reply>) -> Result<(), CoreError> {
    for r in replies {
        match tx.send_payload(r.payload) {
            Ok(_) => {}
            Err(_) if r.best_effort => {}
            Err(e) => return Err(CoreError::from(e.at_stage(&r.context))),
        }
    }
    Ok(())
}

/// The model-provider server: serves the linear stages of one scaled
/// model over framed TCP connections, with resumable sessions.
pub struct ModelProvider {
    stages: Vec<MergedStage>,
    topology: u64,
    factor: i64,
    seed: u64,
    pool: WorkerPool,
    tcp: TcpConfig,
    sessions: SessionTable,
    /// Per-session cap on items with linear rounds in flight; round-0
    /// arrivals beyond it are shed ([`NetConfig::max_inflight_items`]).
    max_inflight: usize,
    /// Concurrent busy-rejecter threads (legacy threaded supervisor
    /// only; the event loop folds rejection into its shards).
    rejecters: AtomicUsize,
    /// Per-connection resource limits and global buffered-bytes
    /// accounting ([`NetConfig::governor`]).
    governor: Governor,
    /// Largest element count across stage input/output shapes — the
    /// topology width the governor's negotiated frame ceiling scales
    /// with.
    max_stage_elems: usize,
    /// Chaos driver: the linear execution of this seq panics once, so
    /// tests can exercise the quarantine boundary deterministically.
    #[cfg(feature = "fault-injection")]
    poison_seq: Option<u64>,
}

/// Ceiling on concurrent detached busy-rejecter threads in the legacy
/// threaded supervisor. A flood beyond it closes connections unanswered
/// instead of spawning without bound.
const MAX_REJECTERS: usize = 32;

/// How long a busy rejection may wait for the client's hello before the
/// connection is abandoned — bounds slow-loris floods on both serving
/// paths.
const REJECT_DRAIN_BOUND: Duration = Duration::from_secs(2);

impl ModelProvider {
    /// Encapsulates the model into merged stages and prepares the server.
    pub fn new(model: &ScaledModel, config: &NetConfig) -> Result<Self, CoreError> {
        let stages = encapsulate_with(model, config.merge_stages)?;
        let topology = topology_digest(&stages, model.factor());
        let max_stage_elems = stages
            .iter()
            .flat_map(|s| [s.input_shape.len(), s.output_shape.len()])
            .max()
            .unwrap_or(1)
            .max(1);
        Ok(ModelProvider {
            stages,
            topology,
            factor: model.factor(),
            seed: config.seed,
            pool: WorkerPool::new(config.threads.max(1)),
            tcp: config.tcp.clone(),
            sessions: SessionTable::new(config.session_ttl, config.session_capacity),
            max_inflight: config.max_inflight_items,
            rejecters: AtomicUsize::new(0),
            governor: Governor::new(config.governor.unwrap_or_default()),
            max_stage_elems,
            #[cfg(feature = "fault-injection")]
            poison_seq: config.fault.as_ref().and_then(|f| f.poison_seq),
        })
    }

    /// The topology digest clients must present.
    pub fn topology(&self) -> u64 {
        self.topology
    }

    /// Live resumable sessions in the table right now. After every
    /// client has said Bye this must be zero — soak tests assert a
    /// drained server leaks no session state.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Opens (creating if absent) the crash journal under `config`,
    /// replays it into the session table — tolerating a truncated or
    /// corrupt tail, the normal shape of a SIGKILLed writer — and arms
    /// journaling for every subsequent session transition. Returns the
    /// number of sessions restored from the pre-crash journal.
    ///
    /// Call before serving. [`ModelProvider::serve_forever`] does this
    /// automatically when [`ServeOptions::journal`] is set; call it
    /// directly when serving via [`ModelProvider::serve_listener`].
    /// Opening a second journal on the same provider is refused.
    pub fn open_journal(&self, config: &JournalConfig) -> Result<usize, CoreError> {
        if self.sessions.journal.lock().is_some() {
            return Err(CoreError::Runtime("session journal is already open".into()));
        }
        let path = config.path();
        let (journal, replay) = Journal::open(&path, config.fsync).map_err(|e| {
            CoreError::Runtime(format!("session journal {}: {e}", path.display()))
        })?;
        Ok(self.sessions.restore(journal, &replay))
    }

    /// Journal appends that failed with an I/O error (0 without a
    /// journal, or while the disk behaves). Serving continues through
    /// append failures; a nonzero count means crash durability has gaps.
    pub fn journal_errors(&self) -> u64 {
        self.sessions.journal_errors.load(Ordering::Relaxed)
    }

    /// Binds `addr` and serves client connections until one ends its
    /// session cleanly (Bye). Returns the bound address alongside the
    /// report so `127.0.0.1:0` callers can learn the assigned port —
    /// though for that pattern [`ModelProvider::serve_listener`] with a
    /// pre-bound listener avoids the race entirely.
    pub fn serve_once(
        &self,
        addr: impl ToSocketAddrs,
    ) -> Result<(ServeReport, SocketAddr), CoreError> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            CoreError::from(StreamError::transport(TransportErrorKind::Bind, format!("bind: {e}")))
        })?;
        let local = listener.local_addr().map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Bind,
                format!("local addr: {e}"),
            ))
        })?;
        let report = self.serve_listener(&listener)?;
        Ok((report, local))
    }

    /// Serves connections on a pre-bound listener, sequentially, until a
    /// client ends its session with a Bye. A dropped connection leaves
    /// its session resumable and the loop accepts the reconnect; a
    /// rejected or failed handshake is counted and the loop keeps
    /// serving — one misconfigured client cannot take the server down.
    pub fn serve_listener(&self, listener: &TcpListener) -> Result<ServeReport, CoreError> {
        let mut report = ServeReport::default();
        loop {
            let (mut tx, mut rx) = tcp::accept_on(listener, &self.tcp)?;
            report.connections += 1;
            match self.handle_conn(&mut tx, &mut rx, &mut report) {
                Ok(ConnOutcome::Clean) => {
                    report.clean_shutdown = true;
                    return Ok(report);
                }
                Ok(ConnOutcome::Dropped) | Ok(ConnOutcome::Rejected) => continue,
                Err(e) => {
                    report.failed_connections += 1;
                    report.last_error = Some(e.to_string());
                    continue;
                }
            }
        }
    }

    /// Supervised multi-client serving: accepts connections on
    /// `listener` until [`ServerHandle::shutdown`].
    ///
    /// Where the platform supports it (Linux on x86_64/aarch64) this
    /// runs the readiness-driven event loop of DESIGN.md §9: one
    /// acceptor plus [`ServeOptions::max_workers`] shard threads
    /// multiplexing nonblocking sockets over epoll, so an idle session
    /// costs a registered fd instead of a parked thread and shutdown is
    /// a wakeup instead of a poll. [`ServeOptions::gather_window`]
    /// additionally coalesces linear rounds from *different* sessions
    /// into fused dispatches. Elsewhere — or with
    /// [`ServeOptions::legacy_threaded`] / `PP_EVLOOP=0` — each
    /// connection gets a worker thread, bounded by `max_workers`, and
    /// idle accepts poll at [`ServeOptions::poll_interval`].
    ///
    /// Either way a per-connection panic or error is isolated and
    /// counted, and shutdown stops accepting then drains in-flight
    /// connections (blocking until their clients close or time out, so
    /// configure read timeouts for unattended deployments).
    pub fn serve_forever(
        self: &Arc<Self>,
        listener: TcpListener,
        options: ServeOptions,
    ) -> Result<ServerHandle, CoreError> {
        let addr = listener.local_addr().map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Bind,
                format!("local addr: {e}"),
            ))
        })?;
        listener.set_nonblocking(true).map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Setup,
                format!("nonblocking listener: {e}"),
            ))
        })?;
        if let Some(cfg) = &options.journal {
            // A journal opened directly via `open_journal` (e.g. to
            // inspect the restored-session count first) stays armed;
            // only open here if nobody did.
            if self.sessions.journal.lock().is_none() {
                self.open_journal(cfg)?;
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let provider = Arc::clone(self);
        let env_off = match std::env::var_os("PP_EVLOOP") {
            Some(v) => v == "0",
            None => false,
        };
        let use_evloop = evloop::supported() && !options.legacy_threaded && !env_off;
        // Wakers must exist before the supervisor thread spawns so
        // `ServerHandle::shutdown` can interrupt waits immediately:
        // one for the acceptor, one per shard.
        let mut wakers = Vec::new();
        if use_evloop {
            for _ in 0..options.max_workers.max(1) + 1 {
                match evloop::Waker::new() {
                    Ok(w) => wakers.push(w),
                    // fd pressure: fall back to the threaded supervisor
                    Err(_) => {
                        wakers.clear();
                        break;
                    }
                }
            }
        }
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        let thread = if use_evloop && !wakers.is_empty() {
            let wakers = wakers.clone();
            std::thread::spawn(move || {
                provider.supervise_evloop(listener, options, stop_flag, wakers)
            })
        } else {
            std::thread::spawn(move || provider.supervise(listener, options, stop_flag))
        };
        #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
        let thread = std::thread::spawn(move || provider.supervise(listener, options, stop_flag));
        Ok(ServerHandle { stop, addr, thread, wakers })
    }

    /// The accept/supervise loop behind [`ModelProvider::serve_forever`].
    /// Idle waits go through [`sleep_observing_stop`], so a coarse
    /// [`ServeOptions::poll_interval`] cannot delay shutdown: the stop
    /// flag is observed within one slice, not one full interval.
    fn supervise(
        self: Arc<Self>,
        listener: TcpListener,
        options: ServeOptions,
        stop: Arc<AtomicBool>,
    ) -> ServeReport {
        let mut report = ServeReport::default();
        let (done_tx, done_rx) = mpsc::channel::<WorkerDone>();
        let mut active = 0usize;
        let max_workers = options.max_workers.max(1);
        while !stop.load(Ordering::Relaxed) {
            while let Ok(done) = done_rx.try_recv() {
                active -= 1;
                absorb_worker(&mut report, done);
            }
            // Admission control: at the session cap — or while buffered
            // bytes exceed the governor's global memory budget — refuse
            // newcomers with a Busy reply instead of queueing them.
            let over_budget = self.governor.over_budget();
            if options.max_sessions.is_some_and(|cap| active >= cap) || over_budget {
                match listener.accept() {
                    Ok((stream, _)) => {
                        report.connections += 1;
                        if over_budget {
                            report.budget_rejected += 1;
                        } else {
                            report.rejected_busy += 1;
                        }
                        self.reject_busy(stream, active, options.retry_after);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        sleep_observing_stop(&stop, options.poll_interval);
                    }
                    Err(e) => {
                        report.failed_connections += 1;
                        report.last_error = Some(format!("accept: {e}"));
                        sleep_observing_stop(&stop, options.poll_interval);
                    }
                }
                continue;
            }
            if active >= max_workers {
                sleep_observing_stop(&stop, options.poll_interval);
                continue;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    report.connections += 1;
                    active += 1;
                    let provider = Arc::clone(&self);
                    let done_tx = done_tx.clone();
                    std::thread::spawn(move || {
                        let done = catch_unwind(AssertUnwindSafe(|| {
                            let mut local = ServeReport::default();
                            let outcome = match tcp::framed_with(stream, &provider.tcp) {
                                Ok((mut ctx, mut crx)) => {
                                    provider.handle_conn(&mut ctx, &mut crx, &mut local)
                                }
                                Err(e) => Err(CoreError::from(e)),
                            };
                            (outcome, local)
                        }));
                        let _ = done_tx.send(done);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    sleep_observing_stop(&stop, options.poll_interval);
                }
                Err(e) => {
                    report.failed_connections += 1;
                    report.last_error = Some(format!("accept: {e}"));
                    sleep_observing_stop(&stop, options.poll_interval);
                }
            }
        }
        // Graceful drain: no new connections, wait out the in-flight ones.
        drop(done_tx);
        while active > 0 {
            match done_rx.recv() {
                Ok(done) => {
                    active -= 1;
                    absorb_worker(&mut report, done);
                }
                Err(_) => break,
            }
        }
        report
    }

    /// Answers an over-capacity connection with a Busy rejection on a
    /// detached thread (so a slow client can't wedge the accept loop),
    /// then closes it. The client's opening hello is drained first: the
    /// socket closes with unread data otherwise, and the resulting RST
    /// could destroy the rejection before the client reads it.
    ///
    /// Two bounds keep a slow-loris flood of hellos from exhausting the
    /// process: at most [`MAX_REJECTERS`] rejecter threads run at once
    /// (beyond that the connection closes unanswered — to the client,
    /// indistinguishable from an overflowed accept backlog, and retried
    /// the same way), and the hello drain waits at most
    /// [`REJECT_DRAIN_BOUND`] even when the configured read timeout is
    /// longer or absent.
    fn reject_busy(self: &Arc<Self>, stream: TcpStream, active: usize, retry_after: Duration) {
        if self.rejecters.fetch_add(1, Ordering::Relaxed) >= MAX_REJECTERS {
            self.rejecters.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let provider = Arc::clone(self);
        std::thread::spawn(move || {
            let mut tcp_config = provider.tcp.clone();
            tcp_config.read_timeout = Some(
                tcp_config.read_timeout.map_or(REJECT_DRAIN_BOUND, |t| t.min(REJECT_DRAIN_BOUND)),
            );
            tcp_config.write_timeout = Some(
                tcp_config.write_timeout.map_or(REJECT_DRAIN_BOUND, |t| t.min(REJECT_DRAIN_BOUND)),
            );
            if let Ok((mut tx, mut rx)) = tcp::framed_with(stream, &tcp_config) {
                let _ = rx.recv();
                let reject = RejectMsg::busy(
                    format!("server at capacity ({active} active sessions)"),
                    retry_after.as_millis() as u64,
                );
                let _ = tx.send_payload(to_frame(&reject));
            }
            provider.rejecters.fetch_sub(1, Ordering::Relaxed);
        });
    }

    /// Counts governor-relevant receive failures before they propagate:
    /// a `FrameLimit` breach means a peer claimed a frame above its
    /// ceiling — an adversarial-peer event operators watch via
    /// [`ServeReport::oversize_frames`].
    fn classify_recv(&self, e: StreamError, report: &mut ServeReport) -> StreamError {
        if matches!(e, StreamError::Transport { kind: TransportErrorKind::FrameLimit, .. }) {
            report.oversize_frames += 1;
        }
        e
    }

    /// Serves one accepted connection on the blocking transport:
    /// opening Hello/Resume, then the EncTensor/Ack/Bye loop. This is a
    /// thin driver over the connection state machine ([`Self::open_conn`]
    /// / [`Self::on_frame`] / [`Self::on_exec_done`]) — the readiness
    /// event loop drives the *same* machine, so both serving paths have
    /// identical protocol semantics by construction. Counts into
    /// `report`; transport and protocol failures return `Err` (the
    /// caller isolates them).
    fn handle_conn(
        &self,
        tx: &mut TcpFrameSender,
        rx: &mut TcpFrameReceiver,
        report: &mut ServeReport,
    ) -> Result<ConnOutcome, CoreError> {
        // --- Opening frame: Hello (fresh session) or Resume ----------------
        // Until the handshake is accepted the peer is unauthenticated:
        // cap its frames at the governor's small pre-auth ceiling so a
        // hostile Hello can never force a large allocation.
        rx.set_max_frame(self.governor.config.pre_auth_ceiling());
        let first = match rx.recv().map_err(|e| self.classify_recv(e, report).at_stage("handshake"))?
        {
            Some(f) => f,
            None => {
                report.rejected_handshakes += 1;
                return Ok(ConnOutcome::Rejected);
            }
        };
        report.frames_in += 1;
        report.bytes_in += first.payload.len() as u64;
        let (replies, opened) = self.open_conn(first.payload, report);
        send_replies(tx, replies)?;
        let mut conn = match opened {
            Opened::Serving(conn) => conn,
            Opened::Rejected => return Ok(ConnOutcome::Rejected),
        };
        // The handshake pinned key width, topology, and packing: raise
        // the ceiling to what this connection's frames can legitimately
        // need — and no further.
        rx.set_max_frame(conn.frame_ceiling);

        // --- Serve linear rounds ------------------------------------------
        loop {
            let frame = match rx
                .recv()
                .map_err(|e| self.classify_recv(e, report).at_stage("linear request"))?
            {
                Some(f) => f,
                None => return Ok(ConnOutcome::Dropped),
            };
            report.frames_in += 1;
            report.bytes_in += frame.payload.len() as u64;
            match self.on_frame(&mut conn, frame, report)? {
                FrameDisposition::Continue(replies) => send_replies(tx, replies)?,
                FrameDisposition::Execute(job) => {
                    let t0 = Instant::now();
                    let (meta, outcome) = run_job(job, &self.pool);
                    report.exec_ns += t0.elapsed().as_nanos() as u64;
                    let replies = self.on_exec_done(&mut conn, meta, outcome, report)?;
                    send_replies(tx, replies)?;
                }
                FrameDisposition::Clean => return Ok(ConnOutcome::Clean),
            }
        }
    }

    /// Absorbs a connection's opening frame: a valid Hello creates a
    /// session (packing negotiated, never assumed — the proposed layout
    /// must fit the key and cover this model's op budget, else the
    /// stream stays per-item), a valid Resume revives one (always
    /// unpacked: replay bookkeeping is per-item, and a resume already
    /// signals a degraded path). Anything else is rejected. The
    /// returned replies carry the Accept or Reject frame.
    fn open_conn(&self, payload: Bytes, report: &mut ServeReport) -> (Vec<Reply>, Opened) {
        match crate::messages::peek_tag(&payload) {
            Some(MsgTag::Hello) => {
                let hello: HelloMsg = match from_frame(payload) {
                    Ok(h) => h,
                    Err(_) => {
                        return (
                            vec![self.reject_reply(report, "malformed hello frame")],
                            Opened::Rejected,
                        )
                    }
                };
                if let Some(reason) = self.validate_hello(&hello) {
                    return (vec![self.reject_reply(report, &reason)], Opened::Rejected);
                }
                let pk = PublicKey::from_n(BigUint::from_bytes_be(&hello.pk_n));
                let packing = self.negotiate_packing(&hello, &pk);
                let pk_n_len = hello.pk_n.len();
                let session =
                    self.sessions.create(hello.pk_n, hello.pk_fingerprint, hello.topology, packing);
                let accept = self.accept_reply(
                    report,
                    hello.pk_fingerprint,
                    session,
                    packing.map_or(0, |s| s.slot_bits as u32),
                );
                let frame_ceiling = self.governor.config.negotiated_ceiling(
                    pk_n_len,
                    self.max_stage_elems,
                    packing.map_or(0, |s| s.slots),
                );
                let conn = ConnState {
                    session,
                    packing,
                    execs: Arc::new(self.build_linear_execs(&pk)),
                    next_round: HashMap::new(),
                    next_packed: HashMap::new(),
                    frame_ceiling,
                };
                (vec![accept], Opened::Serving(Box::new(conn)))
            }
            Some(MsgTag::Resume) => {
                let resume: ResumeMsg = match from_frame(payload) {
                    Ok(r) => r,
                    Err(_) => {
                        return (
                            vec![self.reject_reply(report, "malformed resume frame")],
                            Opened::Rejected,
                        )
                    }
                };
                if resume.version != PROTOCOL_VERSION {
                    let reason = format!(
                        "protocol version mismatch: server speaks {PROTOCOL_VERSION}, \
                         client {}",
                        resume.version
                    );
                    return (vec![self.reject_reply(report, &reason)], Opened::Rejected);
                }
                let entry =
                    match self.sessions.resume(resume.session, resume.items_done, resume.topology)
                    {
                        Ok(entry) => entry,
                        Err(reason) => {
                            return (vec![self.reject_reply(report, &reason)], Opened::Rejected)
                        }
                    };
                report.resumed_sessions += 1;
                let pk = PublicKey::from_n(BigUint::from_bytes_be(&entry.pk_n));
                let accept = self.accept_reply(report, entry.pk_fingerprint, resume.session, 0);
                let frame_ceiling = self.governor.config.negotiated_ceiling(
                    entry.pk_n.len(),
                    self.max_stage_elems,
                    0,
                );
                let conn = ConnState {
                    session: resume.session,
                    packing: None,
                    execs: Arc::new(self.build_linear_execs(&pk)),
                    next_round: HashMap::new(),
                    next_packed: HashMap::new(),
                    frame_ceiling,
                };
                (vec![accept], Opened::Serving(Box::new(conn)))
            }
            _ => (
                vec![self.reject_reply(report, "first frame was neither hello nor resume")],
                Opened::Rejected,
            ),
        }
    }

    /// Absorbs one post-handshake frame and decides what happens next —
    /// replies to queue, a linear-round job to execute, or a clean end.
    /// Protocol violations return `Err` and fail the connection (the
    /// session stays resumable).
    fn on_frame(
        &self,
        conn: &mut ConnState,
        frame: Frame,
        report: &mut ServeReport,
    ) -> Result<FrameDisposition, CoreError> {
        // Any frame proves this session's client is alive: refresh the
        // TTL clock before dispatch, so an open connection streaming a
        // multi-round item (whose floors only move at round 0) cannot
        // be evicted mid-item by another client's create/resume sweep.
        self.sessions.touch(conn.session);
        match crate::messages::peek_tag(&frame.payload) {
            Some(MsgTag::Ack) => {
                let ack: AckMsg = from_frame(frame.payload).map_err(CoreError::from)?;
                self.sessions.ack(conn.session, ack.items_done);
                return Ok(FrameDisposition::Continue(Vec::new()));
            }
            Some(MsgTag::Bye) => {
                self.sessions.remove(conn.session);
                return Ok(FrameDisposition::Clean);
            }
            _ => {}
        }
        let budget_ms = frame.deadline_ms;
        let arrival = Instant::now();

        // Packed batches take their own serving path: one frame per
        // linear round serves every member at once, and any failure
        // aborts the batch (client falls back per-item) instead of
        // poisoning the connection.
        if crate::messages::peek_tag(&frame.payload) == Some(MsgTag::PackedTensor) {
            let msg: PackedTensorMsg = from_frame(frame.payload).map_err(CoreError::from)?;
            return self.packed_round_pre(conn, msg, budget_ms, arrival, report);
        }

        let msg: EncTensorMsg = from_frame(frame.payload).map_err(CoreError::from)?;
        let seq = msg.seq;
        let n_linear = conn.execs.len();

        // A quarantined item is refused before any bookkeeping: a
        // replay (e.g. after a resume) must never execute again.
        if self.sessions.is_quarantined(conn.session, seq) {
            report.quarantined += 1;
            return Ok(FrameDisposition::Continue(vec![self.item_error_reply(
                report,
                seq,
                ItemErrorKind::Quarantined,
                "replay refused: item is quarantined after a panic",
            )]));
        }

        let round = match conn.next_round.get(&seq) {
            Some(&r) => r,
            // Item-level admission control: at the in-flight cap,
            // shedding the newcomer beats queueing without bound.
            None if conn.next_round.len() >= self.max_inflight => {
                report.shed += 1;
                return Ok(FrameDisposition::Continue(vec![self.item_error_reply(
                    report,
                    seq,
                    ItemErrorKind::Shed,
                    &format!("session at its in-flight cap ({})", self.max_inflight),
                )]));
            }
            None => 0,
        };
        if round >= n_linear {
            let err = StreamError::Stage(format!(
                "request {seq} sent more linear rounds than the model has ({n_linear})"
            ));
            return Err(CoreError::from(err));
        }
        if round == 0 {
            match self.sessions.on_round0(conn.session, seq) {
                Ok(true) => report.replayed_items += 1,
                Ok(false) => {}
                Err(reason) => return Err(CoreError::from(StreamError::Stage(reason))),
            }
        }
        // The stage would panic on a shape/count mismatch; turn
        // attacker-reachable malformed input into an error instead.
        let elems = msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
        if elems.map(|n| n as usize) != Some(msg.cts.len()) {
            let err = StreamError::Stage(format!(
                "request {seq} round {round}: shape {:?} does not match {} ciphertexts",
                msg.shape,
                msg.cts.len()
            ));
            return Err(CoreError::from(err));
        }
        // Deadline gate before the expensive Paillier work. The frame
        // carries the *remaining* budget in milliseconds relative to
        // its arrival, so clock skew between the hosts is irrelevant.
        if let Some(ms) = budget_ms {
            if arrival.elapsed() >= Duration::from_millis(ms) {
                report.deadline_expired += 1;
                conn.next_round.remove(&seq);
                return Ok(FrameDisposition::Continue(vec![self.item_error_reply(
                    report,
                    seq,
                    ItemErrorKind::DeadlineExpired,
                    &format!("budget of {ms} ms ran out before linear round {round}"),
                )]));
            }
        }
        Ok(FrameDisposition::Execute(ExecJob {
            round,
            #[cfg(feature = "fault-injection")]
            poison: self.poison_seq == Some(seq),
            kind: JobKind::Item { msg },
            execs: Arc::clone(&conn.execs),
        }))
    }

    /// Applies an executed job's outcome to its connection: advances the
    /// round bookkeeping and produces the reply — stage output, a
    /// quarantine refusal (panic trapped; the poison-item boundary), or
    /// a packed abort. A stage *error* (not panic) fails the connection,
    /// exactly as on the blocking path.
    fn on_exec_done(
        &self,
        conn: &mut ConnState,
        meta: JobMeta,
        outcome: ExecOutcome,
        report: &mut ServeReport,
    ) -> Result<Vec<Reply>, CoreError> {
        let n_linear = conn.execs.len();
        match (meta, outcome) {
            (JobMeta::Item { seq, round }, Ok(ExecOut::Item(res))) => {
                let out = res.map_err(CoreError::from)?;
                if round + 1 == n_linear {
                    conn.next_round.remove(&seq);
                    report.requests += 1;
                } else {
                    conn.next_round.insert(seq, round + 1);
                }
                let payload = to_frame(&out);
                report.bytes_out += payload.len() as u64;
                report.frames_out += 1;
                Ok(vec![Reply {
                    payload,
                    context: format!("linear-{round} reply for request {seq}"),
                    best_effort: false,
                }])
            }
            (JobMeta::Item { seq, .. }, Err(panic_payload)) => {
                let detail = panic_message(panic_payload.as_ref());
                self.sessions.quarantine(conn.session, seq);
                conn.next_round.remove(&seq);
                report.quarantined += 1;
                Ok(vec![self.item_error_reply(
                    report,
                    seq,
                    ItemErrorKind::Quarantined,
                    &format!("item {seq} panicked: {detail}"),
                )])
            }
            (JobMeta::Packed { key, members, round }, Ok(ExecOut::Packed(res))) => match res {
                Ok(out) => {
                    if round + 1 == n_linear {
                        conn.next_packed.remove(&key);
                        report.requests += members;
                    } else {
                        conn.next_packed.insert(key, (out.seqs.clone(), round + 1));
                    }
                    report.packed_rounds += 1;
                    let payload = to_frame(&out);
                    report.bytes_out += payload.len() as u64;
                    report.frames_out += 1;
                    Ok(vec![Reply {
                        payload,
                        context: format!("packed linear-{round} reply for batch {key}"),
                        best_effort: false,
                    }])
                }
                Err(e) => Ok(vec![self.packed_abort_reply(
                    conn,
                    report,
                    key,
                    &format!("packed round {round} failed: {e}"),
                )]),
            },
            (JobMeta::Packed { key, round, .. }, Err(panic_payload)) => {
                let detail = panic_message(panic_payload.as_ref());
                Ok(vec![self.packed_abort_reply(
                    conn,
                    report,
                    key,
                    &format!("packed round {round} panicked: {detail}"),
                )])
            }
            // run_job pairs meta and outcome kinds by construction; a
            // mismatch is a server bug, but it fails one connection
            // (the session stays resumable) instead of panicking a
            // shard that other connections share.
            _ => Err(CoreError::Runtime(
                "job meta does not match its outcome kind (server bug)".into(),
            )),
        }
    }

    /// Builds a Reject reply naming `reason` and counts the rejection.
    /// Best-effort delivery — the client may already be gone.
    fn reject_reply(&self, report: &mut ServeReport, reason: &str) -> Reply {
        report.rejected_handshakes += 1;
        report.last_error = Some(format!("rejected client: {reason}"));
        let payload = to_frame(&RejectMsg::mismatch(reason));
        report.bytes_out += payload.len() as u64;
        report.frames_out += 1;
        Reply { payload, context: "handshake reject".into(), best_effort: true }
    }

    /// Builds a per-item error reply: the item fails, the session and
    /// the connection survive.
    fn item_error_reply(
        &self,
        report: &mut ServeReport,
        seq: u64,
        kind: ItemErrorKind,
        detail: &str,
    ) -> Reply {
        let payload = to_frame(&ItemErrorMsg { seq, kind, detail: detail.to_string() });
        report.bytes_out += payload.len() as u64;
        report.frames_out += 1;
        Reply {
            payload,
            context: format!("item-error reply for request {seq}"),
            best_effort: false,
        }
    }

    fn accept_reply(
        &self,
        report: &mut ServeReport,
        pk_fingerprint: u64,
        session: u64,
        pack_slot_bits: u32,
    ) -> Reply {
        let payload = to_frame(&AcceptMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint,
            topology: self.topology,
            session,
            pack_slot_bits,
        });
        report.bytes_out += payload.len() as u64;
        report.frames_out += 1;
        Reply { payload, context: "handshake accept".into(), best_effort: false }
    }

    /// Accepts the client's proposed packing layout only when it fits
    /// the key's capacity and covers this model's accumulated op budget
    /// (`None` declines — the stream stays on the per-item protocol).
    fn negotiate_packing(&self, hello: &HelloMsg, pk: &PublicKey) -> Option<PackingSpec> {
        if hello.pack_slot_bits == 0 || hello.pack_slots == 0 {
            return None;
        }
        let max = PackingSpec::for_key(pk, hello.pack_slot_bits as usize).ok()?;
        if hello.pack_slots as usize > max.slots {
            return None;
        }
        let spec = PackingSpec {
            slot_bits: hello.pack_slot_bits as usize,
            slots: hello.pack_slots as usize,
            op_budget: hello.pack_budget,
        };
        spec.check().ok()?;
        if hello.pack_budget < packed::required_budget(&self.stages) {
            return None;
        }
        Some(spec)
    }

    /// Validation and admission for one linear round of a packed batch,
    /// up to (but not including) the expensive execution. All failure
    /// modes short of a dead socket answer with a single
    /// [`ItemErrorKind::PackedAbort`] (batch state dropped, perms
    /// released) so the client can replay the members unpacked over the
    /// same connection.
    fn packed_round_pre(
        &self,
        conn: &mut ConnState,
        msg: PackedTensorMsg,
        budget_ms: Option<u64>,
        arrival: Instant,
        report: &mut ServeReport,
    ) -> Result<FrameDisposition, CoreError> {
        let n_linear = conn.execs.len();
        let Some(&key) = msg.seqs.first() else {
            return Err(CoreError::from(StreamError::Stage(
                "packed frame with an empty batch".into(),
            )));
        };
        macro_rules! abort {
            ($detail:expr) => {
                return Ok(FrameDisposition::Continue(vec![
                    self.packed_abort_reply(conn, report, key, $detail)
                ]))
            };
        }
        let Some(spec) = conn.packing else {
            abort!("packing was not negotiated for this connection");
        };
        if msg.slot_bits as usize != spec.slot_bits
            || msg.slots as usize != spec.slots
            || msg.op_budget != spec.op_budget
            || msg.seqs.len() > spec.slots
        {
            abort!("packed layout differs from the negotiated spec");
        }
        let elems = msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
        if elems.map(|n| n as usize) != Some(msg.cts.len()) {
            abort!("packed shape does not match the ciphertext count");
        }

        let round = match conn.next_packed.get(&key) {
            Some((seqs, round)) => {
                if *seqs != msg.seqs {
                    abort!("packed batch membership changed between rounds");
                }
                *round
            }
            None => {
                // Round 0: admission control and per-member exactly-once
                // bookkeeping, mirroring the unpacked path.
                if msg.seqs.iter().any(|&s| self.sessions.is_quarantined(conn.session, s)) {
                    abort!("batch contains a quarantined item");
                }
                let packed_inflight: usize =
                    conn.next_packed.values().map(|(seqs, _)| seqs.len()).sum();
                if conn.next_round.len() + packed_inflight + msg.seqs.len() > self.max_inflight {
                    report.shed += 1;
                    abort!(&format!("session at its in-flight cap ({})", self.max_inflight));
                }
                for &s in &msg.seqs {
                    match self.sessions.on_round0(conn.session, s) {
                        Ok(true) => report.replayed_items += 1,
                        Ok(false) => {}
                        Err(reason) => {
                            return Err(CoreError::from(StreamError::Stage(reason)))
                        }
                    }
                }
                0
            }
        };
        if round >= n_linear {
            return Err(CoreError::from(StreamError::Stage(format!(
                "packed batch {key} sent more linear rounds than the model has ({n_linear})"
            ))));
        }
        if let Some(ms) = budget_ms {
            if arrival.elapsed() >= Duration::from_millis(ms) {
                report.deadline_expired += 1;
                abort!(&format!("budget of {ms} ms ran out before packed linear round {round}"));
            }
        }
        // A panic during execution (op-budget violation, poison member)
        // aborts the batch; the per-item replay re-establishes
        // item-level quarantine.
        Ok(FrameDisposition::Execute(ExecJob {
            round,
            #[cfg(feature = "fault-injection")]
            poison: self.poison_seq.is_some_and(|p| msg.seqs.contains(&p)),
            kind: JobKind::Packed { msg },
            execs: Arc::clone(&conn.execs),
        }))
    }

    /// Aborts a packed batch: drops its round tracking and any stored
    /// permutations, and answers with one [`ItemErrorKind::PackedAbort`]
    /// keyed by the batch's first member. The connection survives; the
    /// client replays every unresolved member unpacked.
    fn packed_abort_reply(
        &self,
        conn: &mut ConnState,
        report: &mut ServeReport,
        key: u64,
        detail: &str,
    ) -> Reply {
        conn.next_packed.remove(&key);
        if let Some(exec0) = conn.execs.first() {
            let packed_key = key | PACKED_PERM_BIT;
            for idx in 0..conn.execs.len() {
                let _ = exec0.perms.take(packed_key, idx);
            }
        }
        report.packed_aborts += 1;
        self.item_error_reply(report, key, ItemErrorKind::PackedAbort, detail)
    }

    /// `None` when the hello is acceptable, otherwise the rejection
    /// reason sent back to the client.
    fn validate_hello(&self, hello: &HelloMsg) -> Option<String> {
        if hello.version != PROTOCOL_VERSION {
            return Some(format!(
                "protocol version mismatch: server speaks {PROTOCOL_VERSION}, client {}",
                hello.version
            ));
        }
        if hello.pk_n.is_empty() || hello.pk_n.len() > 4096 {
            return Some(format!(
                "public key size {} bytes is outside the accepted range (1..=4096)",
                hello.pk_n.len()
            ));
        }
        if pk_fingerprint(&hello.pk_n) != hello.pk_fingerprint {
            return Some("public-key fingerprint does not match the key bytes".into());
        }
        if hello.factor != self.factor {
            return Some(format!(
                "scaling factor mismatch: server {}, client {}",
                self.factor, hello.factor
            ));
        }
        if hello.n_stages as usize != self.stages.len() || hello.topology != self.topology {
            return Some(format!(
                "model topology mismatch: server digest {:#018x} ({} stages), \
                 client digest {:#018x} ({} stages)",
                self.topology,
                self.stages.len(),
                hello.topology,
                hello.n_stages
            ));
        }
        None
    }

    fn build_linear_execs(&self, pk: &PublicKey) -> Vec<LinearStage> {
        let perms = Arc::new(PermStore::default());
        let n_linear = self.stages.iter().filter(|s| s.role == StageRole::Linear).count();
        let mut linear_idx = 0usize;
        let mut execs = Vec::with_capacity(n_linear);
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.role != StageRole::Linear {
                continue;
            }
            execs.push(LinearStage {
                pk: pk.clone(),
                stage: stage.clone(),
                linear_idx,
                is_first: linear_idx == 0,
                is_last: linear_idx == n_linear - 1,
                perms: Arc::clone(&perms),
                mode: PartitionMode::Partitioned,
                seed: self.seed ^ 0x11AE ^ (i as u64) << 8,
                intra_bytes: Arc::new(AtomicU64::new(0)),
            });
            linear_idx += 1;
        }
        execs
    }
}

/// Knobs for [`ModelProvider::serve_forever`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent connection workers; further accepts wait for a slot.
    pub max_workers: usize,
    /// Idle accept-loop poll interval (the listener is non-blocking so
    /// the stop flag is observed promptly).
    pub poll_interval: Duration,
    /// Admission control: with `Some(cap)`, a connection arriving while
    /// `cap` sessions are already being served is answered with a
    /// [`RejectCode::Busy`] reply (carrying [`retry_after`] as the
    /// backoff hint) and closed, instead of waiting for a worker slot.
    /// `None` keeps the legacy queue-for-a-slot behavior.
    ///
    /// [`retry_after`]: ServeOptions::retry_after
    pub max_sessions: Option<usize>,
    /// Backoff hint sent with every busy rejection.
    pub retry_after: Duration,
    /// Cross-session batching window for the event loop: linear-round
    /// jobs from different sessions arriving within this window are
    /// coalesced into one fused pool dispatch. `Duration::ZERO`
    /// (default) disables coalescing — every job executes inline on its
    /// shard, which preserves strict per-session serving order and is
    /// the right choice below ~a few dozen concurrent sessions.
    pub gather_window: Duration,
    /// Forces the legacy thread-per-connection supervisor even where
    /// the readiness event loop is supported (also: `PP_EVLOOP=0`).
    pub legacy_threaded: bool,
    /// Crash journal for the session table
    /// ([`ModelProvider::open_journal`] is called at serve start).
    /// `None` (default) keeps the table purely in-memory — the serve
    /// path is then byte-for-byte what it was before journaling
    /// existed. [`JournalConfig::from_env`] reads `PP_JOURNAL_DIR` /
    /// `PP_JOURNAL_FSYNC` for the binaries.
    pub journal: Option<JournalConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_workers: 4,
            poll_interval: Duration::from_millis(10),
            max_sessions: None,
            retry_after: Duration::from_millis(25),
            gather_window: Duration::ZERO,
            legacy_threaded: false,
            journal: None,
        }
    }
}

/// One worker's outcome: its connection result and local counters, or
/// the panic payload `catch_unwind` trapped.
type WorkerDone = std::thread::Result<(Result<ConnOutcome, CoreError>, ServeReport)>;

/// Sleeps up to `total` in short slices, returning as soon as `stop`
/// is set — so the legacy threaded supervisor's idle waits observe a
/// shutdown within ~25ms no matter how coarse
/// [`ServeOptions::poll_interval`] is (the event loop needs no slicing:
/// its poller parks until a waker fires).
fn sleep_observing_stop(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(25);
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(slice));
    }
}

fn absorb_worker(report: &mut ServeReport, done: WorkerDone) {
    match done {
        Ok((outcome, local)) => {
            report.merge(&local);
            match outcome {
                Ok(ConnOutcome::Clean) => report.clean_shutdown = true,
                Ok(ConnOutcome::Dropped) | Ok(ConnOutcome::Rejected) => {}
                Err(e) => {
                    report.failed_connections += 1;
                    report.last_error = Some(e.to_string());
                }
            }
        }
        Err(_) => report.panicked_connections += 1,
    }
}

/// Handle on a running [`ModelProvider::serve_forever`] loop.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: std::thread::JoinHandle<ServeReport>,
    /// Event-loop wakers (acceptor + shards): `shutdown` fires them so
    /// the loops observe the stop flag immediately rather than after a
    /// `poll_interval` sleep. Empty on the legacy threaded path.
    wakers: Vec<evloop::Waker>,
}

impl ServerHandle {
    /// The bound listening address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight connections, and returns the
    /// aggregated report.
    pub fn shutdown(self) -> ServeReport {
        self.stop.store(true, Ordering::Relaxed);
        for waker in &self.wakers {
            waker.wake();
        }
        self.thread.join().unwrap_or_else(|_| ServeReport {
            last_error: Some("serve_forever supervisor panicked".into()),
            ..Default::default()
        })
    }
}

// ---------------------------------------------------------------------------
// Readiness event loop (Linux x86_64 / aarch64)
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod ev {
    //! The serving event loop of DESIGN.md §9: one acceptor thread plus
    //! `max_workers` shard threads, each multiplexing its share of
    //! nonblocking connections over an epoll [`Poller`]. Every
    //! connection runs the same state machine as the blocking
    //! `handle_conn` driver (`open_conn`/`on_frame`/`on_exec_done`);
    //! the loop only decides *when* frames are absorbed and *where*
    //! admitted jobs execute — inline on the shard, or coalesced with
    //! other sessions' jobs by the gather-window batcher.

    use super::*;
    use crate::evloop::{FrameReader, Poller, Waker, WriteBuf};
    use std::io::Read;
    use std::os::fd::AsRawFd;

    /// Work handed from the acceptor to a shard (always followed by a
    /// wakeup on the shard's eventfd).
    enum ShardCmd {
        /// Serve this connection; it holds an admission slot.
        Serve(TcpStream),
        /// Drain one frame, answer Busy, close. No slot held.
        RejectBusy { stream: TcpStream, active: usize },
    }

    /// A linear-round job on its way to the cross-session batcher.
    struct BatchJob {
        shard: usize,
        conn: u64,
        job: ExecJob,
    }

    /// A finished batched execution routed back to its owning shard.
    struct ExecDone {
        conn: u64,
        meta: JobMeta,
        outcome: ExecOutcome,
    }

    /// What a shard-owned connection is currently doing.
    enum EvPhase {
        /// Waiting for the opening Hello/Resume frame.
        AwaitFirst,
        /// Serving the session's linear rounds.
        Serving(Box<ConnState>),
        /// Admission-control refusal: drain the hello, reply Busy, close.
        RejectBusy { active: usize },
    }

    /// One nonblocking connection multiplexed by a shard.
    struct EvConn {
        stream: TcpStream,
        reader: FrameReader,
        wbuf: WriteBuf,
        phase: EvPhase,
        /// Write interest currently registered with the poller.
        want_write: bool,
        /// Whether this connection holds an admission slot.
        holds_slot: bool,
        /// Close once the write buffer drains (reject / Bye paths).
        close_after_flush: bool,
        /// The peer half-closed; resolve buffered work, then close.
        read_eof: bool,
        /// A linear round is at the batcher; later frames stay buffered
        /// so per-session ordering is untouched by batching.
        exec_inflight: bool,
        /// Busy rejections abandon their drain at this instant — the
        /// event-loop form of [`REJECT_DRAIN_BOUND`], so a slow-loris
        /// flood of silent hellos occupies fds only briefly.
        reject_deadline: Option<Instant>,
        /// Buffered bytes (decode buffer + reply backlog) currently
        /// charged against the governor's global memory budget.
        charged: usize,
    }

    /// Token 0 is the shard's waker; connections start above it.
    const WAKER_TOKEN: u64 = 0;

    struct Shard {
        provider: Arc<ModelProvider>,
        poller: Poller,
        waker: Waker,
        cmd_rx: mpsc::Receiver<ShardCmd>,
        done_rx: mpsc::Receiver<ExecDone>,
        /// `Some` only when a gather window (and thus a batcher) exists.
        job_tx: Option<mpsc::Sender<BatchJob>>,
        id: usize,
        active: Arc<AtomicUsize>,
        stop: Arc<AtomicBool>,
        options: ServeOptions,
        conns: HashMap<u64, EvConn>,
        next_token: u64,
        report: ServeReport,
    }

    impl Shard {
        fn run(mut self) -> ServeReport {
            if self.poller.add(self.waker.raw_fd(), WAKER_TOKEN, false).is_err() {
                self.report.last_error = Some("shard: failed to register waker".into());
                return self.report;
            }
            let mut events = Vec::new();
            loop {
                while let Ok(cmd) = self.cmd_rx.try_recv() {
                    self.admit(cmd);
                }
                while let Ok(done) = self.done_rx.try_recv() {
                    self.finish_exec(done);
                }
                if self.stop.load(Ordering::Relaxed) && self.conns.is_empty() {
                    return self.report;
                }
                let timeout = self
                    .conns
                    .values()
                    .filter_map(|c| c.reject_deadline)
                    .min()
                    .map(|d| d.saturating_duration_since(Instant::now()));
                if self.poller.wait(&mut events, timeout).is_err() {
                    self.report.last_error = Some("shard: event wait failed".into());
                    return self.report;
                }
                for &ev in &events {
                    if ev.token == WAKER_TOKEN {
                        self.waker.drain();
                        continue;
                    }
                    if ev.writable {
                        self.flush_now(ev.token);
                    }
                    if ev.readable {
                        self.read_conn(ev.token);
                    }
                    self.enforce_budgets(ev.token);
                }
                self.sweep_reject_deadlines();
            }
        }

        fn admit(&mut self, cmd: ShardCmd) {
            let (stream, phase, holds_slot, reject_deadline) = match cmd {
                ShardCmd::Serve(stream) => (stream, EvPhase::AwaitFirst, true, None),
                ShardCmd::RejectBusy { stream, active } => (
                    stream,
                    EvPhase::RejectBusy { active },
                    false,
                    Some(Instant::now() + REJECT_DRAIN_BOUND),
                ),
            };
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                if holds_slot {
                    self.active.fetch_sub(1, Ordering::Relaxed);
                }
                self.report.failed_connections += 1;
                self.report.last_error = Some("setup: nonblocking connection".into());
                return;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.add(stream.as_raw_fd(), token, false).is_err() {
                if holds_slot {
                    self.active.fetch_sub(1, Ordering::Relaxed);
                }
                self.report.failed_connections += 1;
                self.report.last_error = Some("setup: epoll registration".into());
                return;
            }
            // Unauthenticated connections read under the governor's
            // small pre-auth frame cap; the ceiling rises to the
            // negotiated limit once the handshake is accepted.
            let mut reader = FrameReader::new(self.provider.tcp.validate_seq);
            reader.set_max_frame(self.provider.governor.config.pre_auth_ceiling());
            self.conns.insert(
                token,
                EvConn {
                    stream,
                    reader,
                    wbuf: WriteBuf::new(),
                    phase,
                    want_write: false,
                    holds_slot,
                    close_after_flush: false,
                    read_eof: false,
                    exec_inflight: false,
                    reject_deadline,
                    charged: 0,
                },
            );
        }

        /// Reads until `WouldBlock` (or a short read — level-triggered
        /// epoll re-reports leftovers), then advances the state machine
        /// over every complete buffered frame.
        fn read_conn(&mut self, token: u64) {
            let mut scratch = [0u8; 16 * 1024];
            loop {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.read_eof || conn.close_after_flush {
                    break;
                }
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.read_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.reader.extend_from(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        let stage = self.stage_of(token);
                        self.fail_conn(
                            token,
                            CoreError::from(
                                StreamError::transport(
                                    TransportErrorKind::Recv,
                                    format!("tcp recv: {e}"),
                                )
                                .at_stage(stage),
                            )
                            .to_string(),
                        );
                        return;
                    }
                }
            }
            self.advance(token);
        }

        /// Stage label for transport errors, mirroring the blocking
        /// driver's `at_stage` contexts.
        fn stage_of(&self, token: u64) -> &'static str {
            match self.conns.get(&token).map(|c| &c.phase) {
                Some(EvPhase::Serving(_)) => "linear request",
                _ => "handshake",
            }
        }

        /// Feeds buffered frames through the state machine until it
        /// needs more bytes, a job goes in flight, or the connection is
        /// closing; then resolves EOF and flushes.
        fn advance(&mut self, token: u64) {
            loop {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.exec_inflight || conn.close_after_flush {
                    break;
                }
                match conn.reader.next_frame() {
                    Ok(Some(frame)) => {
                        if !self.absorb_frame(token, frame) {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        if matches!(
                            e,
                            StreamError::Transport { kind: TransportErrorKind::FrameLimit, .. }
                        ) {
                            self.report.oversize_frames += 1;
                        }
                        let stage = self.stage_of(token);
                        self.fail_conn(token, CoreError::from(e.at_stage(stage)).to_string());
                        return;
                    }
                }
            }
            self.after_read(token);
        }

        /// Runs one decoded frame through the connection state machine.
        /// Returns `false` when the connection was torn down.
        fn absorb_frame(&mut self, token: u64, frame: Frame) -> bool {
            enum Kind {
                AwaitFirst,
                Serving,
                RejectBusy(usize),
            }
            let kind = match self.conns.get(&token).map(|c| &c.phase) {
                Some(EvPhase::AwaitFirst) => Kind::AwaitFirst,
                Some(EvPhase::Serving(_)) => Kind::Serving,
                Some(EvPhase::RejectBusy { active }) => Kind::RejectBusy(*active),
                None => return false,
            };
            match kind {
                Kind::RejectBusy(active) => {
                    // Parity with the threaded rejecter: the drained
                    // hello and the Busy reply stay uncounted (the
                    // acceptor already counted the rejection), so busy
                    // floods don't skew frame/byte accounting.
                    let payload = to_frame(&RejectMsg::busy(
                        format!("server at capacity ({active} active sessions)"),
                        self.options.retry_after.as_millis() as u64,
                    ));
                    // Re-looked-up rather than `expect`ed: the phase
                    // check above holds today, but a panic here would
                    // take down a shard serving *other* connections.
                    let Some(conn) = self.conns.get_mut(&token) else { return false };
                    conn.wbuf.queue(&payload);
                    conn.close_after_flush = true;
                    true
                }
                Kind::AwaitFirst => {
                    self.report.frames_in += 1;
                    self.report.bytes_in += frame.payload.len() as u64;
                    let (replies, opened) =
                        self.provider.open_conn(frame.payload, &mut self.report);
                    let Some(conn) = self.conns.get_mut(&token) else { return false };
                    for r in &replies {
                        conn.wbuf.queue(&r.payload);
                    }
                    match opened {
                        Opened::Serving(state) => {
                            // Handshake accepted: raise the frame
                            // ceiling from the pre-auth cap to what this
                            // connection legitimately negotiated.
                            conn.reader.set_max_frame(state.frame_ceiling);
                            conn.phase = EvPhase::Serving(state);
                        }
                        Opened::Rejected => conn.close_after_flush = true,
                    }
                    true
                }
                Kind::Serving => {
                    self.report.frames_in += 1;
                    self.report.bytes_in += frame.payload.len() as u64;
                    let Some(conn) = self.conns.get_mut(&token) else { return false };
                    let EvPhase::Serving(state) = &mut conn.phase else {
                        // Kind said Serving; a mismatch is a server bug,
                        // but it fails one connection, not the shard.
                        self.fail_conn(token, "connection phase changed mid-frame".into());
                        return false;
                    };
                    match self.provider.on_frame(state, frame, &mut self.report) {
                        Ok(FrameDisposition::Continue(replies)) => {
                            for r in &replies {
                                conn.wbuf.queue(&r.payload);
                            }
                            true
                        }
                        Ok(FrameDisposition::Clean) => {
                            self.report.clean_shutdown = true;
                            conn.close_after_flush = true;
                            true
                        }
                        Ok(FrameDisposition::Execute(job)) => {
                            if let Some(job_tx) = &self.job_tx {
                                // Cross-session batching: park the
                                // connection and ship the job; the
                                // batcher wakes us with the outcome.
                                conn.exec_inflight = true;
                                let sent = job_tx
                                    .send(BatchJob { shard: self.id, conn: token, job })
                                    .is_ok();
                                if !sent {
                                    self.fail_conn(
                                        token,
                                        "batcher unavailable for linear round".into(),
                                    );
                                    return false;
                                }
                                true
                            } else {
                                // No gather window: execute inline on
                                // the provider pool, exactly like the
                                // blocking driver.
                                let t0 = Instant::now();
                                let (meta, outcome) = run_job(job, &self.provider.pool);
                                self.report.exec_ns += t0.elapsed().as_nanos() as u64;
                                match self.provider.on_exec_done(
                                    state,
                                    meta,
                                    outcome,
                                    &mut self.report,
                                ) {
                                    Ok(replies) => {
                                        for r in &replies {
                                            conn.wbuf.queue(&r.payload);
                                        }
                                        true
                                    }
                                    Err(e) => {
                                        self.fail_conn(token, e.to_string());
                                        false
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            self.fail_conn(token, e.to_string());
                            false
                        }
                    }
                }
            }
        }

        /// Applies a batched execution's outcome, then resumes parsing
        /// the frames that queued behind it.
        fn finish_exec(&mut self, done: ExecDone) {
            let token = done.conn;
            let Some(conn) = self.conns.get_mut(&token) else {
                // The connection failed while its job was in flight.
                return;
            };
            conn.exec_inflight = false;
            let EvPhase::Serving(state) = &mut conn.phase else { return };
            match self.provider.on_exec_done(state, done.meta, done.outcome, &mut self.report) {
                Ok(replies) => {
                    for r in &replies {
                        conn.wbuf.queue(&r.payload);
                    }
                }
                Err(e) => {
                    self.fail_conn(token, e.to_string());
                    return;
                }
            }
            self.advance(token);
            self.enforce_budgets(token);
        }

        /// Resolves a half-closed peer once nothing is pending, then
        /// flushes. EOF at a frame boundary mirrors the blocking
        /// driver: before the first frame it's a refused handshake,
        /// mid-session it's a silent drop (session stays resumable),
        /// and mid-frame it's a failed connection.
        fn after_read(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.read_eof && !conn.exec_inflight && !conn.close_after_flush {
                if conn.reader.has_partial() {
                    let silent = matches!(conn.phase, EvPhase::RejectBusy { .. });
                    let stage = self.stage_of(token);
                    if silent {
                        self.close_conn(token);
                    } else {
                        self.fail_conn(
                            token,
                            CoreError::from(
                                StreamError::transport(
                                    TransportErrorKind::Eof,
                                    "connection closed mid-frame",
                                )
                                .at_stage(stage),
                            )
                            .to_string(),
                        );
                    }
                    return;
                }
                if matches!(conn.phase, EvPhase::AwaitFirst) {
                    self.report.rejected_handshakes += 1;
                }
                conn.close_after_flush = true;
            }
            self.flush_now(token);
        }

        /// Drains the write buffer as far as the socket allows and
        /// keeps epoll write interest in sync with whether bytes
        /// remain. Closing paths (`close_after_flush`) treat write
        /// errors as best-effort; anything else is a failed connection.
        fn flush_now(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            match conn.wbuf.flush(&mut conn.stream) {
                Ok(true) => {
                    if conn.close_after_flush {
                        self.close_conn(token);
                        return;
                    }
                    if conn.want_write {
                        conn.want_write = false;
                        let fd = conn.stream.as_raw_fd();
                        let _ = self.poller.modify(fd, token, false);
                    }
                }
                Ok(false) => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let fd = conn.stream.as_raw_fd();
                        let _ = self.poller.modify(fd, token, true);
                    }
                }
                Err(e) => {
                    let silent = conn.close_after_flush;
                    if silent {
                        self.close_conn(token);
                    } else {
                        self.fail_conn(
                            token,
                            CoreError::from(StreamError::transport(
                                TransportErrorKind::Send,
                                format!("tcp send: {e}"),
                            ))
                            .to_string(),
                        );
                    }
                }
            }
        }

        fn sweep_reject_deadlines(&mut self) {
            let now = Instant::now();
            let expired: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.reject_deadline.is_some_and(|d| d <= now))
                .map(|(&t, _)| t)
                .collect();
            for t in expired {
                self.close_conn(t);
            }
        }

        /// Re-states this connection's buffered footprint against the
        /// governor's global budget and evicts it as a slow consumer
        /// when its reply backlog crossed the per-connection cap — the
        /// peer completed a handshake but stopped reading replies. The
        /// eviction is *clean*: the connection closes, the session
        /// entry survives, and a journal-backed resume picks the work
        /// back up ([`ServeReport::evicted_slow`]).
        fn enforce_budgets(&mut self, token: u64) {
            let (old, footprint, backlog, serving) = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                let backlog = conn.wbuf.pending_len();
                let footprint = conn.reader.buffered_len() + backlog;
                let old = conn.charged;
                conn.charged = footprint;
                (old, footprint, backlog, matches!(conn.phase, EvPhase::Serving(_)))
            };
            self.provider.governor.recharge(old, footprint);
            if serving && backlog > self.provider.governor.config.write_backlog {
                self.report.evicted_slow += 1;
                self.report.last_error = Some(format!(
                    "slow consumer evicted: {backlog} reply bytes backlogged \
                     (cap {})",
                    self.provider.governor.config.write_backlog
                ));
                self.close_conn(token);
            }
        }

        fn fail_conn(&mut self, token: u64, detail: String) {
            self.report.failed_connections += 1;
            self.report.last_error = Some(detail);
            self.close_conn(token);
        }

        fn close_conn(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                self.provider.governor.release(conn.charged);
                let _ = self.poller.delete(conn.stream.as_raw_fd());
                if conn.holds_slot {
                    self.active.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The cross-session batcher: gathers jobs arriving within
    /// `window` of the first, executes them as **one** pool dispatch
    /// (each item runs on an inline pool — a nested dispatch onto the
    /// shared pool would deadlock), and routes outcomes back to their
    /// shards. Coalescing changes only *scheduling*: each item still
    /// runs its own deterministic per-element execution, so replies are
    /// bit-identical to per-session serving.
    fn run_batcher(
        provider: Arc<ModelProvider>,
        job_rx: mpsc::Receiver<BatchJob>,
        done_txs: Vec<(mpsc::Sender<ExecDone>, Waker)>,
        window: Duration,
    ) -> ServeReport {
        let mut report = ServeReport::default();
        while let Ok(first) = job_rx.recv() {
            let mut jobs = vec![first];
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match job_rx.recv_timeout(deadline - now) {
                    Ok(j) => jobs.push(j),
                    Err(_) => break,
                }
            }
            let n = jobs.len();
            let mut routes = Vec::with_capacity(n);
            let slots: Arc<Vec<Mutex<Option<ExecJob>>>> = Arc::new(
                jobs.into_iter()
                    .map(|b| {
                        routes.push((b.shard, b.conn));
                        Mutex::new(Some(b.job))
                    })
                    .collect(),
            );
            let taken = Arc::clone(&slots);
            let t0 = Instant::now();
            let outs: Vec<(JobMeta, ExecOutcome)> = provider.pool.map_ranges(n, move |range| {
                let inline = WorkerPool::inline();
                // Poison-audit: this `expect` cannot fire — `map_ranges`
                // partitions `0..n` disjointly, so each slot is taken
                // exactly once — and replacing it with a skip would
                // silently misalign `outs` against `routes` below
                // (outcomes routed to the wrong connections). The slot
                // mutex is parking_lot, so a panicked worker can't
                // poison it for the others either.
                range
                    .map(|i| run_job(taken[i].lock().take().expect("each job taken once"), &inline))
                    .collect()
            });
            report.exec_ns += t0.elapsed().as_nanos() as u64;
            report.batched_rounds += 1;
            report.batched_items += n as u64;
            let mut woken: HashSet<usize> = HashSet::new();
            for ((shard, conn), (meta, outcome)) in routes.into_iter().zip(outs) {
                if done_txs[shard].0.send(ExecDone { conn, meta, outcome }).is_ok() {
                    woken.insert(shard);
                }
            }
            for s in woken {
                done_txs[s].1.wake();
            }
        }
        report
    }

    impl ModelProvider {
        /// The event-loop supervisor behind `serve_forever`: acceptor
        /// here, shards and batcher on their own threads. Any setup
        /// failure (fd pressure on pollers) falls back to the legacy
        /// threaded supervisor so serving never silently dies.
        pub(super) fn supervise_evloop(
            self: Arc<Self>,
            listener: TcpListener,
            options: ServeOptions,
            stop: Arc<AtomicBool>,
            wakers: Vec<Waker>,
        ) -> ServeReport {
            let n_shards = options.max_workers.max(1);
            debug_assert_eq!(wakers.len(), n_shards + 1);
            let poller = match Poller::new() {
                Ok(p) => p,
                Err(_) => return self.supervise(listener, options, stop),
            };
            if poller.add(wakers[0].raw_fd(), 0, false).is_err()
                || poller.add(listener.as_raw_fd(), 1, false).is_err()
            {
                return self.supervise(listener, options, stop);
            }
            let mut shard_pollers = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                match Poller::new() {
                    Ok(p) => shard_pollers.push(p),
                    Err(_) => return self.supervise(listener, options, stop),
                }
            }

            let active = Arc::new(AtomicUsize::new(0));
            let gather = options.gather_window;
            let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
            let mut cmd_txs = Vec::with_capacity(n_shards);
            let mut done_txs = Vec::with_capacity(n_shards);
            let mut shards = Vec::with_capacity(n_shards);
            for (id, shard_poller) in shard_pollers.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel();
                let (done_tx, done_rx) = mpsc::channel();
                cmd_txs.push(cmd_tx);
                done_txs.push((done_tx, wakers[id + 1].clone()));
                let shard = Shard {
                    provider: Arc::clone(&self),
                    poller: shard_poller,
                    waker: wakers[id + 1].clone(),
                    cmd_rx,
                    done_rx,
                    job_tx: (gather > Duration::ZERO).then(|| job_tx.clone()),
                    id,
                    active: Arc::clone(&active),
                    stop: Arc::clone(&stop),
                    options: options.clone(),
                    conns: HashMap::new(),
                    next_token: 1,
                    report: ServeReport::default(),
                };
                shards.push(std::thread::spawn(move || shard.run()));
            }
            drop(job_tx);
            let batcher = (gather > Duration::ZERO).then(|| {
                let provider = Arc::clone(&self);
                std::thread::spawn(move || run_batcher(provider, job_rx, done_txs, gather))
            });

            let mut report = ServeReport::default();
            let mut events = Vec::new();
            let mut rr = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if poller.wait(&mut events, None).is_err() {
                    report.last_error = Some("acceptor: event wait failed".into());
                    break;
                }
                if events.iter().any(|e| e.token == 0) {
                    wakers[0].drain();
                }
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            report.connections += 1;
                            // Admission control: the session cap and the
                            // governor's global memory budget both
                            // busy-reject — clients retry/fail over the
                            // same way for either.
                            let over_budget = self.governor.over_budget();
                            let at_cap = options
                                .max_sessions
                                .is_some_and(|cap| active.load(Ordering::Relaxed) >= cap)
                                || over_budget;
                            let holds_slot = !at_cap;
                            let cmd = if at_cap {
                                if over_budget {
                                    report.budget_rejected += 1;
                                } else {
                                    report.rejected_busy += 1;
                                }
                                ShardCmd::RejectBusy {
                                    stream,
                                    active: active.load(Ordering::Relaxed),
                                }
                            } else {
                                active.fetch_add(1, Ordering::Relaxed);
                                ShardCmd::Serve(stream)
                            };
                            let shard = rr % n_shards;
                            rr += 1;
                            if cmd_txs[shard].send(cmd).is_ok() {
                                wakers[shard + 1].wake();
                            } else {
                                if holds_slot {
                                    active.fetch_sub(1, Ordering::Relaxed);
                                }
                                report.failed_connections += 1;
                                report.last_error = Some("shard unavailable for accept".into());
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => {
                            report.failed_connections += 1;
                            report.last_error = Some(format!("accept: {e}"));
                            // Avoid a hot error loop on a persistent
                            // accept failure; readiness is level-
                            // triggered, so nothing is lost.
                            sleep_observing_stop(&stop, options.poll_interval);
                            break;
                        }
                    }
                }
            }

            // Drain: closing the command channels plus one wakeup per
            // shard lets each shard observe the stop flag immediately,
            // finish its live connections, and return its counters.
            drop(cmd_txs);
            for w in &wakers[1..] {
                w.wake();
            }
            for handle in shards {
                match handle.join() {
                    Ok(shard_report) => report.merge(&shard_report),
                    Err(_) => report.panicked_connections += 1,
                }
            }
            if let Some(handle) = batcher {
                if let Ok(batch_report) = handle.join() {
                    report.merge(&batch_report);
                }
            }
            report
        }
    }
}

// ---------------------------------------------------------------------------
// Data provider (client)
// ---------------------------------------------------------------------------

/// One protocol step as seen from the client: a socket round trip to the
/// server's next linear stage, or a local non-linear stage.
enum ClientStep {
    Linear { round: usize },
    NonLinear(Box<NonLinearStage>),
}

/// Transient transport failures the resume loop recovers from; protocol
/// violations (handshake, seq, decode, stage) stay fatal.
fn is_transient(e: &StreamError) -> bool {
    matches!(
        e,
        StreamError::Transport {
            kind: TransportErrorKind::Send
                | TransportErrorKind::Recv
                | TransportErrorKind::Timeout
                | TransportErrorKind::Eof
                | TransportErrorKind::Connect,
            ..
        }
    )
}

/// Backoff before retrying a Busy-rejected connect: the server's
/// `retry_after_ms` hint, clamped into the retry policy's delay range.
fn busy_backoff(retry: &pp_stream_runtime::RetryPolicy, hint_ms: u64) -> Duration {
    let floor = retry.base_delay.min(retry.max_delay);
    Duration::from_millis(hint_ms).clamp(floor, retry.max_delay.max(floor))
}

/// Connects to the first reachable provider address, sweeping the
/// ordered list starting at `preferred` (wrapping). One bare attempt
/// per address per sweep, with the retry policy's backoff *between*
/// sweeps — so a down primary costs one refused connect before the next
/// replica is tried, and `retry.max_attempts` bounds whole-list sweeps
/// exactly as it bounds single-address attempts today. Returns the
/// framed halves, the index that answered, and the individual connect
/// attempts spent.
fn connect_sweep(
    addrs: &[SocketAddr],
    preferred: usize,
    config: &TcpConfig,
) -> Result<(TcpFrameSender, TcpFrameReceiver, usize, u32), StreamError> {
    let sweeps = config.retry.max_attempts.max(1);
    // Jitter seed: decorrelate processes without pulling in a rand dep.
    let seed = std::process::id() as u64 ^ 0x5bd1_e995_9950_57ea;
    let single = TcpConfig {
        retry: pp_stream_runtime::RetryPolicy::no_retry(),
        ..config.clone()
    };
    let mut attempts = 0u32;
    let mut last_err = None;
    for sweep in 1..=sweeps {
        let delay = config.retry.delay_before(sweep, seed);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        for offset in 0..addrs.len() {
            let idx = (preferred + offset) % addrs.len();
            attempts += 1;
            match tcp::connect_with(addrs[idx], &single) {
                Ok(c) => return Ok((c.tx, c.rx, idx, attempts)),
                Err(e) => last_err = Some(e),
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        StreamError::transport(TransportErrorKind::Connect, "no provider addresses")
    }))
}

/// Placeholder halves installed while a reconnect is in flight, so the
/// dead socket drops (and the server sees its EOF) *before* the resume
/// handshake waits on a reply.
struct DeadHalf;

fn dead_err() -> StreamError {
    StreamError::transport(TransportErrorKind::Eof, "connection torn down for reconnect")
}

impl FrameSender for DeadHalf {
    fn send(&mut self, _frame: &Frame) -> Result<(), StreamError> {
        Err(dead_err())
    }
    fn send_payload(&mut self, _payload: Bytes) -> Result<u64, StreamError> {
        Err(dead_err())
    }
    fn send_payload_deadline(
        &mut self,
        _payload: Bytes,
        _deadline_ms: Option<u64>,
    ) -> Result<u64, StreamError> {
        Err(dead_err())
    }
}

impl FrameReceiver for DeadHalf {
    fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
        Err(dead_err())
    }
}

/// The data-provider client: a connected, handshaken session against a
/// [`ModelProvider`], with transparent reconnect-and-resume.
pub struct NetworkedSession {
    tx: Box<dyn FrameSender>,
    rx: Box<dyn FrameReceiver>,
    /// Ordered provider addresses; `addrs[addr_idx]` is serving now.
    addrs: Vec<SocketAddr>,
    addr_idx: usize,
    tcp: TcpConfig,
    scaled: ScaledModel,
    steps: Vec<ClientStep>,
    encrypt: EncryptStage,
    /// Precomputed `r^n` blinding factors, refilled per stream off the
    /// request path (shared with `encrypt`).
    rand_pool: Arc<Mutex<RandomnessPool>>,
    pool: WorkerPool,
    transport: TransportReport,
    session: u64,
    /// Items fully delivered to the caller; doubles as the next item's
    /// request seq, so a second `infer_stream` call keeps seqs unique
    /// and the exactly-once floor intact.
    items_done: u64,
    topology: u64,
    fingerprint: u64,
    max_resumes: u32,
    /// Per-item end-to-end budget ([`NetConfig::item_deadline`]).
    item_deadline: Option<Duration>,
    /// Stall-watchdog window on linear replies
    /// ([`NetConfig::stall_window`]).
    stall_window: Option<Duration>,
    /// The packed-ciphertext layout negotiated at connect, or `None`
    /// when the stream runs per-item (declined, disabled, or dropped
    /// after a resume — resumed connections are always unpacked).
    packing: Option<PackingSpec>,
    /// Requested members per packed batch ([`NetConfig::pack_batch`];
    /// 0 fills every slot the negotiated layout offers).
    pack_batch: usize,
    fault: FaultHook,
}

/// How one item of a partial stream ended — see
/// [`NetworkedSession::infer_stream_partial`].
#[derive(Clone, Debug)]
pub enum ItemOutcome {
    /// The item completed; the scaled output tensor.
    Done(Tensor<i64>),
    /// The item failed individually (shed, expired, or quarantined)
    /// while the session survived. The item was **resolved**: its seq is
    /// acked and it will never be retried by this session.
    Failed {
        /// Which overload outcome failed the item.
        kind: ItemErrorKind,
        /// Human-readable detail from the failing side.
        detail: String,
    },
}

impl ItemOutcome {
    /// The output tensor, if the item completed.
    pub fn output(&self) -> Option<&Tensor<i64>> {
        match self {
            ItemOutcome::Done(t) => Some(t),
            ItemOutcome::Failed { .. } => None,
        }
    }
}

/// Internal per-item result: completed output, or a per-item failure
/// that resolves the item without failing the session.
enum ItemResult {
    Output(PlainTensorMsg),
    Failed { kind: ItemErrorKind, detail: String },
}

/// How one packed round set ended: every member's plaintext output, or
/// an instruction to replay the members unpacked. `reset` asks for a
/// reconnect first — the server may still hold batch round state (and
/// stored permutations) that only a connection teardown releases.
enum PackedRoundOutcome {
    Done(Vec<PlainTensorMsg>),
    Fallback { reset: bool },
}

/// Converts a resolved item into the caller-facing outcome. In strict
/// mode a per-item failure errors the whole call.
fn outcome_from(result: ItemResult, seq: u64, strict: bool) -> Result<ItemOutcome, CoreError> {
    match result {
        ItemResult::Output(out) => {
            let shape: Vec<usize> = out.shape.iter().map(|&d| d as usize).collect();
            let values = out
                .values
                .iter()
                .map(|&v| {
                    i64::try_from(v).map_err(|_| {
                        CoreError::Runtime(format!(
                            "final logit {v} for request {seq} does not fit i64"
                        ))
                    })
                })
                .collect::<Result<Vec<i64>, CoreError>>()?;
            Ok(ItemOutcome::Done(
                Tensor::from_vec(shape, values).map_err(|e| CoreError::Runtime(e.to_string()))?,
            ))
        }
        ItemResult::Failed { kind, detail } => {
            if strict {
                return Err(CoreError::Runtime(format!(
                    "request {seq} failed ({kind:?}): {detail}"
                )));
            }
            Ok(ItemOutcome::Failed { kind, detail })
        }
    }
}

impl NetworkedSession {
    /// Connects (with the configured retry/backoff), generates the
    /// Paillier keypair, and performs the deployment handshake. A server
    /// rejection or a version/echo mismatch surfaces as
    /// `Transport { kind: Handshake, .. }`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        scaled: ScaledModel,
        config: &NetConfig,
    ) -> Result<Self, CoreError> {
        Self::connect_any(&[addr], scaled, config)
    }

    /// As [`connect`](NetworkedSession::connect), but with an *ordered*
    /// list of provider addresses: the first is preferred, and every
    /// connect or resume failure against the current address fails over
    /// to the next (wrapping), so a restarted provider — or a warm
    /// replica sharing its journal directory — picks the stream up
    /// mid-item. Each failover is counted in
    /// [`TransportReport::failovers`]. The binaries read the list from
    /// comma-separated `PP_PROVIDER_ADDRS`.
    pub fn connect_any<A: ToSocketAddrs>(
        providers: &[A],
        scaled: ScaledModel,
        config: &NetConfig,
    ) -> Result<Self, CoreError> {
        // Resolve once so reconnects don't depend on the generic addrs;
        // list order (= failover priority) is preserved.
        let mut addrs: Vec<SocketAddr> = Vec::new();
        for provider in providers {
            addrs.extend(provider.to_socket_addrs().map_err(|e| {
                CoreError::from(StreamError::transport(
                    TransportErrorKind::Connect,
                    format!("resolve peer address: {e}"),
                ))
            })?);
        }
        if addrs.is_empty() {
            return Err(CoreError::from(StreamError::transport(
                TransportErrorKind::Connect,
                "no provider addresses resolved",
            )));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let keypair = Keypair::generate(config.key_bits, &mut rng);
        let stages = encapsulate_with(&scaled, config.merge_stages)?;
        let topology = topology_digest(&stages, scaled.factor());

        let pk_n = keypair.public().n().to_bytes_be();
        let fingerprint = pk_fingerprint(&pk_n);
        // Propose a packed-ciphertext layout sized for this key and
        // model (the op budget covers the worst linear stage). An
        // infeasible proposal silently degrades to per-item streaming.
        let packing = if config.pack_slot_bits > 0 {
            PackingSpec::for_key(&keypair.public(), config.pack_slot_bits)
                .map(|s| s.with_budget(packed::required_budget(&stages)))
                .and_then(|s| s.check().map(|()| s))
                .ok()
        } else {
            None
        };
        let hello = to_frame(&HelloMsg {
            version: PROTOCOL_VERSION,
            pk_n,
            pk_fingerprint: fingerprint,
            topology,
            n_stages: stages.len() as u32,
            factor: scaled.factor(),
            pack_slot_bits: packing.map_or(0, |s| s.slot_bits as u32),
            pack_slots: packing.map_or(0, |s| s.slots as u32),
            pack_budget: packing.map_or(0, |s| s.op_budget),
        });

        let mut transport = TransportReport::default();
        // Busy-rejection backoff: an admission-controlled server answers
        // the hello with `Reject { code: Busy, retry_after_ms }`. Honor
        // the hint and retry within the connect retry budget instead of
        // treating the rejection as fatal.
        let mut attempt = 0u32;
        let mut addr_idx = 0usize;
        let (tx, rx, session, accepted_slot_bits) = loop {
            attempt += 1;
            let (mut tx, mut rx, idx, attempts) =
                connect_sweep(&addrs, addr_idx, &config.tcp).map_err(CoreError::from)?;
            transport.connect_attempts += attempts;
            if idx != addr_idx {
                // The preferred provider was unreachable; a lower-
                // priority address answered instead.
                transport.failovers += 1;
                addr_idx = idx;
            }
            transport.bytes_sent += hello.len() as u64;
            transport.frames_sent += 1;
            tx.send_payload(hello.clone()).map_err(|e| e.at_stage("handshake hello"))?;

            let reply = rx
                .recv()
                .map_err(|e| e.at_stage("handshake reply"))?
                .ok_or_else(|| handshake_err("server closed without answering hello"))?;
            transport.bytes_received += reply.payload.len() as u64;
            transport.frames_received += 1;
            match crate::messages::peek_tag(&reply.payload) {
                Some(MsgTag::Accept) => {
                    let accept: AcceptMsg = from_frame(reply.payload).map_err(CoreError::from)?;
                    if accept.version != PROTOCOL_VERSION
                        || accept.pk_fingerprint != fingerprint
                        || accept.topology != topology
                    {
                        return Err(CoreError::from(handshake_err(
                            "server accept did not echo the agreed parameters",
                        )));
                    }
                    break (tx, rx, accept.session, accept.pack_slot_bits);
                }
                Some(MsgTag::Reject) => {
                    let reject: RejectMsg = from_frame(reply.payload).map_err(CoreError::from)?;
                    if reject.code == RejectCode::Busy
                        && attempt < config.tcp.retry.max_attempts.max(1)
                    {
                        transport.rejected_busy += 1;
                        std::thread::sleep(busy_backoff(
                            &config.tcp.retry,
                            reject.retry_after_ms,
                        ));
                        continue;
                    }
                    return Err(CoreError::from(handshake_err(format!(
                        "server rejected handshake: {}",
                        reject.reason
                    ))));
                }
                _ => {
                    return Err(CoreError::from(handshake_err(
                        "unexpected reply to hello (neither accept nor reject)",
                    )));
                }
            }
        };

        // The proposal stands only if the server echoed its slot width;
        // an echo of 0 (or anything else) declines packing.
        let packing = packing.filter(|s| accepted_slot_bits as usize == s.slot_bits);

        // Client-side execution plan: socket round trips for linear
        // stages, local executors for the rest (same construction as the
        // in-process session, so results match bit-for-bit).
        let n = stages.len();
        let mut round = 0usize;
        let steps = stages
            .iter()
            .enumerate()
            .map(|(i, stage)| match stage.role {
                StageRole::Linear => {
                    let step = ClientStep::Linear { round };
                    round += 1;
                    step
                }
                StageRole::NonLinear => ClientStep::NonLinear(Box::new(NonLinearStage {
                    keypair: keypair.clone(),
                    stage: stage.clone(),
                    factor: scaled.factor(),
                    is_last: i == n - 1,
                    seed: config.seed ^ 0x2020 ^ (i as u64) << 8,
                })),
            })
            .collect();

        // Fault injection (when configured) wraps only the post-handshake
        // traffic — the recovery path itself stays un-faulted.
        let fault = fault_hook(config);
        let (tx, rx) = wrap_transport(tx, rx, &fault);

        // Seed the blinding-factor pool with the process-wide fixed-base
        // table for this key: reconnects and sibling sessions under the
        // same keypair reuse one comb table instead of rebuilding it.
        let refill_base = pp_paillier::shared_refill_cache().get(&keypair.public());
        let rand_pool =
            Arc::new(Mutex::new(RandomnessPool::with_base(keypair.public(), refill_base)));
        Ok(NetworkedSession {
            tx,
            rx,
            addrs,
            addr_idx,
            tcp: config.tcp.clone(),
            scaled,
            steps,
            encrypt: EncryptStage {
                pk: keypair.public(),
                seed: config.seed ^ 0x0E2C,
                rand_pool: Some(Arc::clone(&rand_pool)),
            },
            rand_pool,
            pool: WorkerPool::new(config.threads.max(1)),
            transport,
            session,
            items_done: 0,
            topology,
            fingerprint,
            max_resumes: config.max_resumes,
            item_deadline: config.item_deadline,
            stall_window: config.stall_window,
            packing,
            pack_batch: config.pack_batch,
            fault,
        })
    }

    /// Transport statistics so far.
    pub fn transport(&self) -> &TransportReport {
        &self.transport
    }

    /// The server-assigned session ID.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Streams inference requests through the deployment (sequentially,
    /// one socket round trip per linear stage), returning the scaled
    /// output tensors and a run report whose
    /// [`transport`](RunReport::transport) field carries the socket-level
    /// statistics. Transient transport failures are absorbed by the
    /// reconnect-and-resume loop; only exhausted retries or protocol
    /// violations surface as errors.
    pub fn infer_stream(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<Tensor<i64>>, RunReport), CoreError> {
        let (outcomes, report) = self.run_stream(inputs, true)?;
        let outputs = outcomes
            .into_iter()
            .map(|o| match o {
                ItemOutcome::Done(t) => t,
                ItemOutcome::Failed { .. } => unreachable!("strict mode errors on failed items"),
            })
            .collect();
        Ok((outputs, report))
    }

    /// As [`infer_stream`](NetworkedSession::infer_stream), but per-item
    /// overload failures (shed, deadline-expired, quarantined) are
    /// returned as [`ItemOutcome::Failed`] entries instead of failing
    /// the whole call — the session keeps streaming the remaining items.
    /// Every item, failed or not, is resolved and acked: a failed item
    /// is never silently retried (a quarantined one must not be).
    pub fn infer_stream_partial(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<ItemOutcome>, RunReport), CoreError> {
        self.run_stream(inputs, false)
    }

    /// Partial-tolerant classification: `None` for items that failed
    /// individually, the predicted class otherwise.
    pub fn classify_stream_partial(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<Option<usize>>, RunReport), CoreError> {
        let (outcomes, report) = self.run_stream(inputs, false)?;
        let classes =
            outcomes.iter().map(|o| o.output().map(pp_nn::activation::argmax_i64)).collect();
        Ok((classes, report))
    }

    /// The shared per-item loop behind the strict and partial streaming
    /// APIs. In strict mode the first per-item failure errors the call;
    /// in partial mode it becomes an [`ItemOutcome::Failed`] entry.
    fn run_stream(
        &mut self,
        inputs: &[Tensor<f64>],
        strict: bool,
    ) -> Result<(Vec<ItemOutcome>, RunReport), CoreError> {
        let t_run = Instant::now();
        // Precompute the stream's worth of `r^n` blinding factors in
        // parallel before the first request, so per-item encryption is a
        // cheap multiply on the request path.
        {
            let need = inputs.len() * self.scaled.input_shape().len();
            self.rand_pool.lock().refill_parallel(need, &self.pool, self.encrypt.seed ^ 0x5EED);
        }
        let mut latencies = Vec::with_capacity(inputs.len());
        let mut outcomes = Vec::with_capacity(inputs.len());

        let mut idx = 0usize;
        while idx < inputs.len() {
            let remaining = inputs.len() - idx;
            // Chunk size under the negotiated packing (1 = per-item): a
            // lone trailing item always travels unpacked — packing it
            // would cost the batch protocol for no amortization.
            let batch = match self.packing {
                Some(spec) => {
                    let want =
                        if self.pack_batch == 0 { spec.slots } else { self.pack_batch.min(spec.slots) };
                    want.min(remaining)
                }
                None => 1,
            };
            if batch >= 2 {
                let t0 = Instant::now();
                let base = self.items_done;
                let plains: Vec<PlainTensorMsg> = inputs[idx..idx + batch]
                    .iter()
                    .enumerate()
                    .map(|(j, input)| {
                        let scaled_in = self.scaled.scale_input(input);
                        PlainTensorMsg {
                            seq: base + j as u64,
                            shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                            values: scaled_in.data().iter().map(|&v| v as i128).collect(),
                        }
                    })
                    .collect();
                // One budget spans the whole batch: its members travel
                // together, so they expire together.
                let deadline = self.item_deadline.map(|budget| Instant::now() + budget);
                match self.run_packed_batch(&plains, deadline) {
                    PackedRoundOutcome::Done(results) => {
                        self.items_done += batch as u64;
                        self.send_ack();
                        let per_item = t0.elapsed();
                        self.transport.packed_items += batch as u64;
                        for out in results {
                            let seq = out.seq;
                            latencies.push(per_item);
                            outcomes.push(outcome_from(ItemResult::Output(out), seq, strict)?);
                        }
                        idx += batch;
                        continue;
                    }
                    PackedRoundOutcome::Fallback { reset } => {
                        self.transport.packed_fallbacks += 1;
                        if reset {
                            // The server may still track this batch (and
                            // its stored permutations); reconnecting
                            // clears both, and drops packing for the
                            // rest of the stream (resumed connections
                            // run unpacked).
                            self.reconnect_and_resume().map_err(CoreError::from)?;
                        }
                        // Fall through: replay every member per-item.
                    }
                }
            }
            for input in &inputs[idx..idx + batch] {
                let t0 = Instant::now();
                let seq = self.items_done;
                let scaled_in = self.scaled.scale_input(input);
                let plain = PlainTensorMsg {
                    seq,
                    shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                    values: scaled_in.data().iter().map(|&v| v as i128).collect(),
                };
                // The end-to-end budget is stamped once per item and spans
                // every hop, resume, and replay of it.
                let deadline = self.item_deadline.map(|budget| Instant::now() + budget);
                let result = self.run_request(plain, deadline)?;
                // Success and per-item failure both *resolve* the item: the
                // seq is consumed and acked, so a failed item is never
                // retried (a quarantined one must not be).
                self.items_done += 1;
                self.send_ack();
                latencies.push(t0.elapsed());
                outcomes.push(outcome_from(result, seq, strict)?);
            }
            idx += batch;
        }

        let makespan = t_run.elapsed();
        // A stream can legitimately resolve zero items (empty input
        // slice); dividing by `latencies.len()` would panic, so an empty
        // stream reports a zero mean instead.
        let mean_latency = if latencies.is_empty() {
            Duration::ZERO
        } else {
            latencies.iter().sum::<Duration>() / latencies.len() as u32
        };
        self.transport.faults_injected = fault_count(&self.fault);
        let mut transport = self.transport.clone();
        transport.clean_shutdown = true; // no transport error reached here
        let report = RunReport {
            latencies,
            makespan,
            mean_latency,
            // One physical link: request and reply directions.
            link_bytes: vec![transport.bytes_sent, transport.bytes_received],
            intra_stage_bytes: 0, // linear dispatch happens server-side
            stage_names: self.stage_names(),
            stage_busy: vec![],
            stage_threads: vec![],
            stages: vec![],
            transport: Some(transport),
            pool_misses: self.rand_pool.lock().misses(),
        };
        Ok((outcomes, report))
    }

    /// Streams requests and returns the predicted class per input.
    pub fn classify_stream(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<usize>, RunReport), CoreError> {
        let (outputs, report) = self.infer_stream(inputs)?;
        let classes = outputs.iter().map(pp_nn::activation::argmax_i64).collect();
        Ok((classes, report))
    }

    /// Ends the session deliberately (Bye, so the server frees its
    /// resume state and observes a clean shutdown) and returns the final
    /// transport statistics. Best-effort: if the connection is dead, one
    /// reconnect is attempted to deliver the Bye.
    pub fn shutdown(mut self) -> TransportReport {
        let bye = to_frame(&ByeMsg);
        let len = bye.len() as u64;
        let mut sent = self.tx.send_payload(bye.clone()).is_ok();
        if !sent && self.reconnect_and_resume().is_ok() {
            sent = self.tx.send_payload(bye).is_ok();
        }
        if sent {
            self.transport.bytes_sent += len;
            self.transport.frames_sent += 1;
        }
        self.transport.clean_shutdown = sent;
        self.transport.faults_injected = fault_count(&self.fault);
        self.transport
    }

    /// Runs one item to completion (or a per-item failure), absorbing
    /// transient transport failures and watchdog-diagnosed stalls via
    /// reconnect-and-resume (up to `max_resumes` cycles).
    fn run_request(
        &mut self,
        plain: PlainTensorMsg,
        deadline: Option<Instant>,
    ) -> Result<ItemResult, CoreError> {
        let mut resumes = 0u32;
        loop {
            let mut progressed = false;
            let err = match self.try_request(&plain, deadline, &mut progressed) {
                Ok(out) => return Ok(out),
                Err(e) => e,
            };
            let recoverable = is_transient(&err) || matches!(err, StreamError::Stalled { .. });
            if !recoverable || resumes >= self.max_resumes {
                return Err(CoreError::from(err));
            }
            resumes += 1;
            match self.reconnect_and_resume() {
                Ok(()) => {
                    if progressed {
                        // The server saw at least round 0 of this
                        // attempt; the retry is a true replay.
                        self.transport.items_replayed += 1;
                    }
                }
                Err(resume_err) => {
                    // Surface the original failure; the failed recovery
                    // is context, not the headline.
                    return Err(CoreError::from(
                        err.at_stage(&format!("after failed resume ({resume_err})")),
                    ));
                }
            }
        }
    }

    /// One attempt at a whole batch's round set as packed ciphertexts.
    /// Never fails the call: anything short of full success asks the
    /// caller to fall back to per-item replay (`reset` when the server
    /// may still hold batch state that a reconnect must clear).
    fn run_packed_batch(
        &mut self,
        plains: &[PlainTensorMsg],
        deadline: Option<Instant>,
    ) -> PackedRoundOutcome {
        let Some(spec) = self.packing else {
            return PackedRoundOutcome::Fallback { reset: false };
        };
        let Some(first) = plains.first() else {
            return PackedRoundOutcome::Fallback { reset: false };
        };
        let key = first.seq;
        let expected: Vec<u64> = plains.iter().map(|p| p.seq).collect();
        let packed = {
            let mut pool = self.rand_pool.lock();
            packed::pack_plain_batch(&self.encrypt.pk, spec, plains, &mut pool, self.encrypt.seed)
        };
        let mut msg = match packed {
            Ok(m) => m,
            Err(_) => return PackedRoundOutcome::Fallback { reset: false },
        };
        let last = self.steps.len() - 1;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ClientStep::Linear { round } => {
                    let budget_ms = match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                // Expired mid-flight: replay unpacked
                                // (with fresh per-item budgets). Past
                                // round 0 the server tracks the batch,
                                // so the fallback must reconnect.
                                return PackedRoundOutcome::Fallback { reset: *round > 0 };
                            }
                            Some((d - now).as_millis() as u64)
                        }
                        None => None,
                    };
                    let payload = to_frame(&msg);
                    let len = payload.len() as u64;
                    if self.tx.send_payload_deadline(payload, budget_ms).is_err() {
                        // Dead socket: the per-item replay reconnects.
                        return PackedRoundOutcome::Fallback { reset: false };
                    }
                    self.transport.bytes_sent += len;
                    self.transport.frames_sent += 1;
                    let t_recv = Instant::now();
                    let frame = match self.rx.recv() {
                        Ok(Some(frame)) => frame,
                        Ok(None) | Err(_) => {
                            return PackedRoundOutcome::Fallback { reset: false };
                        }
                    };
                    self.transport.bytes_received += frame.payload.len() as u64;
                    self.transport.frames_received += 1;
                    if let Some(window) = self.stall_window {
                        if t_recv.elapsed() > window {
                            self.transport.stalls += 1;
                            return PackedRoundOutcome::Fallback { reset: true };
                        }
                    }
                    match crate::messages::peek_tag(&frame.payload) {
                        Some(MsgTag::ItemError) => {
                            // A PackedAbort already released the server's
                            // batch state; any other error reply is a
                            // protocol surprise worth a clean slate.
                            let reset = match from_frame::<ItemErrorMsg>(frame.payload) {
                                Ok(ie) => ie.kind != ItemErrorKind::PackedAbort || ie.seq != key,
                                Err(_) => true,
                            };
                            return PackedRoundOutcome::Fallback { reset };
                        }
                        Some(MsgTag::PackedTensor) => {
                            msg = match from_frame(frame.payload) {
                                Ok(m) => m,
                                Err(_) => return PackedRoundOutcome::Fallback { reset: true },
                            };
                            let elems =
                                msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
                            if msg.seqs != expected
                                || elems.map(|n| n as usize) != Some(msg.cts.len())
                            {
                                return PackedRoundOutcome::Fallback { reset: true };
                            }
                            self.transport.packed_rounds += 1;
                        }
                        _ => return PackedRoundOutcome::Fallback { reset: true },
                    }
                }
                ClientStep::NonLinear(nl) => {
                    if i == last {
                        return match packed::unpack_final(nl, msg, &self.pool) {
                            Ok(outputs) => PackedRoundOutcome::Done(outputs),
                            Err(_) => PackedRoundOutcome::Fallback { reset: true },
                        };
                    }
                    msg = match packed::repack_nonlinear(nl, msg, &self.pool) {
                        Ok(m) => m,
                        Err(_) => return PackedRoundOutcome::Fallback { reset: true },
                    };
                }
            }
        }
        PackedRoundOutcome::Fallback { reset: true }
    }

    /// One attempt at an item's full round set over the current
    /// connection. `progressed` flips once the server has seen round 0,
    /// so the caller can count true replays.
    fn try_request(
        &mut self,
        plain: &PlainTensorMsg,
        deadline: Option<Instant>,
        progressed: &mut bool,
    ) -> Result<ItemResult, StreamError> {
        let seq = plain.seq;
        let mut msg = self.encrypt.encrypt(plain.clone(), &self.pool);
        let last = self.steps.len() - 1;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ClientStep::Linear { round } => {
                    let stage_name = format!("linear-{round}@model (request {seq})");
                    // Remaining budget for this hop, re-stamped as a
                    // relative duration (never a wall timestamp, so the
                    // peers' clocks need not agree). An exhausted budget
                    // sheds the item client-side before the send.
                    let budget_ms = match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                self.transport.deadline_expired += 1;
                                return Ok(ItemResult::Failed {
                                    kind: ItemErrorKind::DeadlineExpired,
                                    detail: format!(
                                        "budget exhausted before the {stage_name} send"
                                    ),
                                });
                            }
                            Some((d - now).as_millis() as u64)
                        }
                        None => None,
                    };
                    let payload = to_frame(&msg);
                    let len = payload.len() as u64;
                    self.tx
                        .send_payload_deadline(payload, budget_ms)
                        .map_err(|e| e.at_stage(&format!("{stage_name} send")))?;
                    *progressed = true;
                    self.transport.bytes_sent += len;
                    self.transport.frames_sent += 1;
                    let t_recv = Instant::now();
                    let frame = self
                        .rx
                        .recv()
                        .map_err(|e| e.at_stage(&format!("{stage_name} reply")))?
                        .ok_or_else(|| {
                            StreamError::transport(
                                TransportErrorKind::Eof,
                                format!("server closed before the {stage_name} reply"),
                            )
                        })?;
                    self.transport.bytes_received += frame.payload.len() as u64;
                    self.transport.frames_received += 1;
                    // Stall watchdog: a reply that took longer than the
                    // window marks the connection as alive-but-stuck.
                    // The late frame is discarded and the item recovered
                    // by reconnect-and-resume — replay is bit-identical,
                    // so dropping a valid reply is safe.
                    if let Some(window) = self.stall_window {
                        if t_recv.elapsed() > window {
                            self.transport.stalls += 1;
                            return Err(StreamError::Stalled { stage: stage_name });
                        }
                    }
                    // A per-item error reply fails this item and leaves
                    // the session streaming.
                    if matches!(
                        crate::messages::peek_tag(&frame.payload),
                        Some(MsgTag::ItemError)
                    ) {
                        let ie: ItemErrorMsg = from_frame(frame.payload)?;
                        if ie.seq != seq {
                            return Err(StreamError::Stage(format!(
                                "{stage_name}: item-error reply carries seq {} (misrouted)",
                                ie.seq
                            )));
                        }
                        match ie.kind {
                            ItemErrorKind::DeadlineExpired => {
                                self.transport.deadline_expired += 1
                            }
                            ItemErrorKind::Quarantined => self.transport.quarantined += 1,
                            ItemErrorKind::Shed => self.transport.shed += 1,
                            // Only packed rounds are answered with an
                            // abort; for an unpacked item it still
                            // resolves the item like any other failure.
                            ItemErrorKind::PackedAbort => {}
                            // CorruptReply is raised client-side; an
                            // honest server never sends it, but a wire
                            // message carrying it still just fails the
                            // one item.
                            ItemErrorKind::CorruptReply => {}
                        }
                        return Ok(ItemResult::Failed { kind: ie.kind, detail: ie.detail });
                    }
                    msg = from_frame(frame.payload)?;
                    // A corrupted-but-decodable reply must die here, not
                    // flow into a stage that would panic on it.
                    if msg.seq != seq {
                        return Err(StreamError::Stage(format!(
                            "{stage_name}: reply carries seq {} (corrupt or misrouted)",
                            msg.seq
                        )));
                    }
                    let elems = msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
                    if elems.map(|n| n as usize) != Some(msg.cts.len()) {
                        return Err(StreamError::Stage(format!(
                            "{stage_name}: reply shape {:?} does not match {} ciphertexts",
                            msg.shape,
                            msg.cts.len()
                        )));
                    }
                }
                ClientStep::NonLinear(nl) => {
                    // Stage failures here mean the reply decoded as a
                    // frame but its ciphertexts decrypt to garbage (or
                    // out-of-range values). The connection is fine —
                    // fail the one item instead of tearing down.
                    if i == last {
                        return match nl.execute_final(msg, &self.pool) {
                            Ok(out) => Ok(ItemResult::Output(out)),
                            Err(e) => Ok(ItemResult::Failed {
                                kind: ItemErrorKind::CorruptReply,
                                detail: e.to_string(),
                            }),
                        };
                    }
                    msg = match nl.execute(msg, &self.pool) {
                        Ok(m) => m,
                        Err(e) => {
                            return Ok(ItemResult::Failed {
                                kind: ItemErrorKind::CorruptReply,
                                detail: e.to_string(),
                            })
                        }
                    };
                }
            }
        }
        Err(StreamError::Stage("pipeline must end with a final non-linear stage".into()))
    }

    /// Tears down the dead connection, reconnects with the configured
    /// retry policy, and re-syncs the session via Resume. On success the
    /// new (fault-wrapped) halves are installed.
    fn reconnect_and_resume(&mut self) -> Result<(), StreamError> {
        // Drop the dead socket *first*: a sequential server is still
        // blocked reading it and will only accept the new connection
        // after seeing its EOF.
        self.tx = Box::new(DeadHalf);
        self.rx = Box::new(DeadHalf);
        revive_fault(&self.fault);

        let resume = to_frame(&ResumeMsg {
            version: PROTOCOL_VERSION,
            session: self.session,
            items_done: self.items_done,
            topology: self.topology,
        });

        // Busy rejections of the resume are backed off and retried, like
        // at connect: an at-capacity server has *not* forgotten the
        // session — giving up would orphan its resumable state. Any
        // *other* rejection fails over to the next provider address —
        // a restarted process (same journal) or a warm replica may hold
        // the session even when this one does not — and only after
        // every address has refused does the resume give up.
        let mut attempt = 0u32;
        let mut rejected = 0usize;
        loop {
            attempt += 1;
            let (mut tx, mut rx, idx, attempts) =
                connect_sweep(&self.addrs, self.addr_idx, &self.tcp)
                    .map_err(|e| e.at_stage("reconnect"))?;
            self.transport.connect_attempts += attempts;
            if idx != self.addr_idx {
                self.transport.failovers += 1;
                self.addr_idx = idx;
            }

            self.transport.bytes_sent += resume.len() as u64;
            self.transport.frames_sent += 1;
            tx.send_payload(resume.clone()).map_err(|e| e.at_stage("resume"))?;

            let reply = rx
                .recv()
                .map_err(|e| e.at_stage("resume reply"))?
                .ok_or_else(|| handshake_err("server closed without answering resume"))?;
            self.transport.bytes_received += reply.payload.len() as u64;
            self.transport.frames_received += 1;
            match crate::messages::peek_tag(&reply.payload) {
                Some(MsgTag::Accept) => {
                    let accept: AcceptMsg = from_frame(reply.payload)?;
                    if accept.version != PROTOCOL_VERSION
                        || accept.pk_fingerprint != self.fingerprint
                        || accept.session != self.session
                    {
                        return Err(handshake_err(
                            "server resume-accept did not echo the session parameters",
                        ));
                    }
                }
                Some(MsgTag::Reject) => {
                    let reject: RejectMsg = from_frame(reply.payload)?;
                    if reject.code == RejectCode::Busy
                        && attempt < self.tcp.retry.max_attempts.max(1)
                    {
                        self.transport.rejected_busy += 1;
                        std::thread::sleep(busy_backoff(&self.tcp.retry, reject.retry_after_ms));
                        continue;
                    }
                    rejected += 1;
                    if rejected < self.addrs.len() {
                        // This provider refused the session; fail over.
                        self.addr_idx = (idx + 1) % self.addrs.len();
                        self.transport.failovers += 1;
                        continue;
                    }
                    return Err(handshake_err(format!(
                        "server rejected resume: {}",
                        reject.reason
                    )));
                }
                _ => {
                    return Err(handshake_err(
                        "unexpected reply to resume (neither accept nor reject)",
                    ));
                }
            }

            let (tx, rx) = wrap_transport(tx, rx, &self.fault);
            self.tx = tx;
            self.rx = rx;
            self.transport.reconnects += 1;
            // Resumed connections run unpacked: the replacement server
            // connection negotiated no packing (Resume has no proposal)
            // and its fresh PermStore has no packed permutations.
            self.packing = None;
            return Ok(());
        }
    }

    /// Fire-and-forget delivery confirmation after a completed item. A
    /// lost ack is harmless: the next operation's failure triggers a
    /// resume, which re-syncs the floor from `items_done`.
    fn send_ack(&mut self) {
        let payload = to_frame(&AckMsg { items_done: self.items_done });
        let len = payload.len() as u64;
        if self.tx.send_payload(payload).is_ok() {
            self.transport.bytes_sent += len;
            self.transport.frames_sent += 1;
        }
    }

    fn stage_names(&self) -> Vec<String> {
        let mut names = vec!["encrypt@data".to_string()];
        let mut ni = 0;
        for step in &self.steps {
            match step {
                ClientStep::Linear { round } => names.push(format!("linear-{round}@model")),
                ClientStep::NonLinear(_) => {
                    names.push(format!("nonlinear-{ni}@data"));
                    ni += 1;
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::zoo;

    fn model(seed: u64) -> ScaledModel {
        let mut rng = StdRng::seed_from_u64(seed);
        ScaledModel::from_model(&zoo::mlp("m", &[4, 6, 3], &mut rng).unwrap(), 100)
    }

    #[test]
    fn topology_digest_is_stable_and_discriminating() {
        let m = model(1);
        let stages = encapsulate_with(&m, true).unwrap();
        let d1 = topology_digest(&stages, m.factor());
        let d2 = topology_digest(&stages, m.factor());
        assert_eq!(d1, d2, "digest must be deterministic");
        assert_ne!(d1, topology_digest(&stages, m.factor() + 1), "factor changes digest");

        let other = model(1); // same weights, same architecture
        let other_stages = encapsulate_with(&other, true).unwrap();
        assert_eq!(d1, topology_digest(&other_stages, other.factor()));

        let mut rng = StdRng::seed_from_u64(1);
        let wider = ScaledModel::from_model(&zoo::mlp("m", &[4, 7, 3], &mut rng).unwrap(), 100);
        let wider_stages = encapsulate_with(&wider, true).unwrap();
        assert_ne!(
            d1,
            topology_digest(&wider_stages, wider.factor()),
            "different architecture must change the digest"
        );
    }

    #[test]
    fn fingerprint_differs_for_different_keys() {
        assert_ne!(pk_fingerprint(&[1, 2, 3]), pk_fingerprint(&[1, 2, 4]));
        assert_eq!(pk_fingerprint(b"same"), pk_fingerprint(b"same"));
    }

    #[test]
    fn hello_validation_names_each_mismatch() {
        let m = model(2);
        let provider = ModelProvider::new(&m, &NetConfig::small_test(128)).unwrap();
        let pk_n = vec![7u8; 16];
        let good = HelloMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: pk_fingerprint(&pk_n),
            pk_n,
            topology: provider.topology(),
            n_stages: provider.stages.len() as u32,
            factor: m.factor(),
            pack_slot_bits: 0,
            pack_slots: 0,
            pack_budget: 0,
        };
        assert_eq!(provider.validate_hello(&good), None);

        let mut bad = good.clone();
        bad.version += 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("version"));

        let mut bad = good.clone();
        bad.pk_n = vec![0u8; 5000];
        bad.pk_fingerprint = pk_fingerprint(&bad.pk_n);
        assert!(provider.validate_hello(&bad).unwrap().contains("key size"));

        let mut bad = good.clone();
        bad.pk_n = vec![];
        bad.pk_fingerprint = pk_fingerprint(&bad.pk_n);
        assert!(provider.validate_hello(&bad).unwrap().contains("key size"));

        let mut bad = good.clone();
        bad.pk_fingerprint ^= 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("fingerprint"));

        let mut bad = good.clone();
        bad.factor += 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("factor"));

        let mut bad = good;
        bad.topology ^= 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("topology"));
    }

    #[test]
    fn packing_negotiation_accepts_fitting_layouts_and_declines_the_rest() {
        let m = model(2);
        let provider = ModelProvider::new(&m, &NetConfig::small_test(128)).unwrap();
        let pk = Keypair::generate(128, &mut StdRng::seed_from_u64(5)).public();
        let budget = packed::required_budget(&provider.stages);
        let max = PackingSpec::for_key(&pk, 32).unwrap();
        let hello = |bits: u32, slots: u32, budget: u64| HelloMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: 0,
            pk_n: vec![],
            topology: provider.topology(),
            n_stages: provider.stages.len() as u32,
            factor: m.factor(),
            pack_slot_bits: bits,
            pack_slots: slots,
            pack_budget: budget,
        };

        let good = hello(32, max.slots as u32, budget);
        let spec = provider.negotiate_packing(&good, &pk).expect("fitting layout accepted");
        assert_eq!(
            spec,
            PackingSpec { slot_bits: 32, slots: max.slots, op_budget: budget },
            "the accepted spec is exactly the client's proposal"
        );

        // No proposal → per-item protocol.
        assert_eq!(provider.negotiate_packing(&hello(0, 0, budget), &pk), None);
        // More slots than the key's plaintext space holds.
        assert_eq!(provider.negotiate_packing(&hello(32, max.slots as u32 + 1, budget), &pk), None);
        // Slot width outside the key's usable bits.
        assert_eq!(provider.negotiate_packing(&hello(200, 1, budget), &pk), None);
        // Budget too small for this model's linear stages.
        assert_eq!(
            provider.negotiate_packing(&hello(32, max.slots as u32, budget - 1), &pk),
            None,
            "a proposal that under-provisions the op budget is declined"
        );
        // Slot too narrow to hold the offset guard bits for this budget.
        assert_eq!(provider.negotiate_packing(&hello(4, 1, budget), &pk), None);
    }

    #[test]
    fn session_table_enforces_exactly_once() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let s = table.create(vec![1, 2, 3], 99, 0x70B0, None);
        assert!(s >= 1, "session 0 is never issued");

        // Fresh item, then a legitimate post-resume replay of the same.
        assert_eq!(table.on_round0(s, 0), Ok(false));
        assert_eq!(table.on_round0(s, 0), Ok(true), "restart before ack is a replay");

        // Ack raises the floor; restarting below it is a violation.
        table.ack(s, 1);
        let err = table.on_round0(s, 0).unwrap_err();
        assert!(err.contains("exactly-once"), "{err}");
        assert_eq!(table.on_round0(s, 1), Ok(false), "the floor itself is fair game");
    }

    #[test]
    fn session_table_resume_validates_and_syncs() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let s = table.create(vec![9], pk_fingerprint(&[9]), 0xABCD, None);

        let missing = table.resume(s + 1, 0, 0xABCD).unwrap_err();
        assert!(missing.contains("unknown or expired"), "{missing}");

        let wrong_topo = table.resume(s, 0, 0xDCBA).unwrap_err();
        assert!(wrong_topo.contains("topology"), "{wrong_topo}");

        // Resume syncs the ack floor from the client's completed count.
        let entry = table.resume(s, 5, 0xABCD).unwrap();
        assert_eq!(entry.acked, 5);
        assert_eq!(entry.started, 5);

        // A client claiming *less* done than the server has acked lost
        // state — replaying delivered items is refused.
        let behind = table.resume(s, 3, 0xABCD).unwrap_err();
        assert!(behind.contains("exactly-once"), "{behind}");
    }

    #[test]
    fn session_table_evicts_by_ttl_and_capacity() {
        // TTL: a zero-TTL table expires entries as soon as wall time
        // advances past their last touch.
        let table = SessionTable::new(Duration::ZERO, 8);
        let s = table.create(vec![1], 1, 1, None);
        std::thread::sleep(Duration::from_millis(2));
        let err = table.resume(s, 0, 1).unwrap_err();
        assert!(err.contains("unknown or expired"), "{err}");

        // Capacity: the least-recently-seen session is evicted.
        let table = SessionTable::new(Duration::from_secs(60), 2);
        let a = table.create(vec![1], 1, 7, None);
        std::thread::sleep(Duration::from_millis(2));
        let b = table.create(vec![2], 2, 7, None);
        std::thread::sleep(Duration::from_millis(2));
        table.ack(a, 0); // touch a, making b the LRU entry
        std::thread::sleep(Duration::from_millis(2));
        let c = table.create(vec![3], 3, 7, None);
        assert_eq!(table.len(), 2);
        assert!(table.resume(b, 0, 7).unwrap_err().contains("unknown"));
        assert!(table.resume(a, 0, 7).is_ok());
        assert!(table.resume(c, 0, 7).is_ok());
    }

    #[test]
    fn serve_report_merge_accumulates() {
        let mut total = ServeReport { requests: 1, connections: 1, ..Default::default() };
        let worker = ServeReport {
            requests: 3,
            frames_in: 10,
            replayed_items: 2,
            rejected_handshakes: 1,
            rejected_busy: 5,
            deadline_expired: 4,
            quarantined: 1,
            shed: 2,
            oversize_frames: 3,
            evicted_slow: 2,
            budget_rejected: 1,
            clean_shutdown: true,
            last_error: Some("boom".into()),
            ..Default::default()
        };
        total.merge(&worker);
        assert_eq!(total.requests, 4);
        assert_eq!(total.frames_in, 10);
        assert_eq!(total.connections, 1, "merge only sums what the worker counted");
        assert_eq!(total.replayed_items, 2);
        assert_eq!(total.rejected_handshakes, 1);
        assert_eq!(total.rejected_busy, 5);
        assert_eq!(total.deadline_expired, 4);
        assert_eq!(total.quarantined, 1);
        assert_eq!(total.shed, 2);
        assert_eq!(total.oversize_frames, 3);
        assert_eq!(total.evicted_slow, 2);
        assert_eq!(total.budget_rejected, 1);
        assert!(total.clean_shutdown);
        assert_eq!(total.last_error.as_deref(), Some("boom"));
    }

    /// Regression: an open-but-idle connection (frames flowing, but no
    /// floor movement past the TTL — e.g. a slow multi-round item or
    /// keepalive acks) must not have its session TTL-evicted out from
    /// under it by another client's create/resume sweep.
    #[test]
    fn touched_idle_session_survives_ttl_eviction() {
        let table = SessionTable::new(Duration::from_millis(40), 8);
        let s = table.create(vec![1], 1, 7, None);
        let idle = table.create(vec![2], 2, 7, None);
        // Frames keep arriving on s's connection, each well within the
        // TTL, while `idle` sees nothing at all.
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(15));
            table.touch(s);
        }
        // Another client's create sweeps expired entries: the touched
        // session survives, the genuinely idle one is collected.
        let _other = table.create(vec![3], 3, 7, None);
        assert!(table.resume(s, 0, 7).is_ok(), "touched session was evicted");
        assert!(table.resume(idle, 0, 7).unwrap_err().contains("unknown or expired"));
    }

    fn journal_scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pp-net-journal-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(crate::journal::JOURNAL_FILE)
    }

    /// The crash-recovery core in miniature: every floor movement of a
    /// journaled table is replayed into a fresh table ("the restarted
    /// process") and keeps enforcing exactly-once semantics.
    #[test]
    fn session_table_journal_restores_crash_state() {
        use crate::journal::FsyncPolicy;
        let path = journal_scratch("restore");

        // "First process": journaled transitions, then SIGKILL (drop).
        let (s, gone) = {
            let table = SessionTable::new(Duration::from_secs(60), 8);
            let (j, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open");
            assert_eq!(table.restore(j, &replay), 0);
            let s = table.create(vec![7, 7], pk_fingerprint(&[7, 7]), 0xABCD, None);
            let gone = table.create(vec![8], pk_fingerprint(&[8]), 0xABCD, None);
            assert_eq!(table.on_round0(s, 0), Ok(false));
            table.ack(s, 1);
            assert_eq!(table.on_round0(s, 1), Ok(false));
            table.quarantine(s, 1);
            table.remove(gone);
            (s, gone)
        };

        // "Restarted process": replay the same journal.
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let (j, replay) = Journal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(table.restore(j, &replay), 1, "one session was alive at the crash");

        let entry = table.resume(s, 1, 0xABCD).expect("pre-crash session resumes");
        assert_eq!(entry.acked, 1, "ack floor survived the crash");
        assert_eq!(entry.started, 2, "round-0 floor survived the crash");
        assert!(entry.quarantined.contains(&1), "quarantine survived the crash");
        assert!(table.resume(gone, 0, 0xABCD).unwrap_err().contains("unknown"));

        // The floors keep holding across the restart.
        assert!(table.on_round0(s, 0).unwrap_err().contains("exactly-once"));
        assert_eq!(table.on_round0(s, 1), Ok(true), "in-flight item replays");

        // New sessions never collide with pre-crash IDs.
        let fresh = table.create(vec![9], pk_fingerprint(&[9]), 0xABCD, None);
        assert!(fresh > s.max(gone), "restored next_id clears every journaled ID");
    }

    #[test]
    fn session_table_quarantine_survives_resume() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let s = table.create(vec![1], 1, 7, None);
        assert!(!table.is_quarantined(s, 3));
        table.quarantine(s, 3);
        assert!(table.is_quarantined(s, 3));
        // The poison marker outlives the connection: a resume sees it.
        let entry = table.resume(s, 0, 7).unwrap();
        assert!(entry.quarantined.contains(&3));
        assert!(table.is_quarantined(s, 3));
        assert!(!table.is_quarantined(s, 4), "only the poison seq is marked");
    }

    #[test]
    fn busy_backoff_honors_and_clamps_the_hint() {
        let retry = pp_stream_runtime::RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter: false,
        };
        assert_eq!(busy_backoff(&retry, 0), Duration::from_millis(10), "no hint -> base delay");
        assert_eq!(busy_backoff(&retry, 25), Duration::from_millis(25), "hint in range");
        assert_eq!(busy_backoff(&retry, 10_000), Duration::from_millis(80), "hint capped");
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let p = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
    }
}
