//! Two-process networked deployment: the model provider and data
//! provider as separate processes exchanging [`pp_stream_runtime::link::Frame`]s
//! over real TCP sockets — the paper's testbed topology (model and data
//! providers on separate hosts), versus the in-process pipeline of
//! [`crate::PpStream`].
//!
//! ## Roles
//!
//! * [`ModelProvider`] — the server. Holds the scaled weights, executes
//!   the **linear** stages homomorphically under the data provider's
//!   public key, and manages obfuscation (permutation draw/invert),
//!   exactly as [`crate::protocol::LinearStage`] does in-process.
//! * [`NetworkedSession`] — the client (data provider). Holds the
//!   Paillier keypair and the inputs, runs the encrypt stage and the
//!   **non-linear** stages locally, and round-trips every linear stage
//!   through the server.
//!
//! ## Handshake
//!
//! Before any ciphertext flows the client sends a
//! [`HelloMsg`](crate::messages::HelloMsg): protocol version, public-key
//! bytes + fingerprint, and a digest of the merged-stage topology. The
//! server answers [`AcceptMsg`](crate::messages::AcceptMsg) (echoing the
//! agreed parameters) or [`RejectMsg`](crate::messages::RejectMsg)
//! naming the mismatch, so a client built against a different model
//! layout fails fast with `Transport { kind: Handshake, .. }` instead of
//! corrupting an inference mid-stream.
//!
//! ## Frame exchange
//!
//! Each inference request runs the in-process protocol's rounds over the
//! socket: the client serializes the current
//! [`EncTensorMsg`](crate::messages::EncTensorMsg) through the wire
//! codec and ships it in a frame whose transport `seq` is stamped by
//! [`TcpFrameSender::send_payload`] (strictly increasing per direction,
//! validated by the receiving side); the request's own `seq` travels
//! inside the message, decoupled from transport framing. Requests are
//! processed sequentially in this version — cross-request pipelining
//! over the socket is future work; the in-process pipeline remains the
//! throughput path.

use crate::encapsulate::{encapsulate_with, MergedStage, StageRole};
use crate::messages::{
    AcceptMsg, EncTensorMsg, HelloMsg, MsgTag, PlainTensorMsg, RejectMsg, PROTOCOL_VERSION,
};
use crate::protocol::{EncryptStage, LinearStage, NonLinearStage, PartitionMode, PermStore};
use crate::session::RunReport;
use crate::CoreError;
use pp_bigint::BigUint;
use pp_nn::scaling::{ScaledModel, ScaledOp};
use pp_paillier::{Keypair, PublicKey};
use pp_stream_runtime::wire::{from_frame, to_frame};
use pp_stream_runtime::{
    tcp, StreamError, TcpConfig, TcpFrameReceiver, TcpFrameSender, TransportErrorKind, WorkerPool,
};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration shared by both ends of a deployment.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Paillier key size in bits (client-side keygen).
    pub key_bits: usize,
    /// Determinism seed for keys, permutations, and encryption
    /// randomness.
    pub seed: u64,
    /// Worker threads per side.
    pub threads: usize,
    /// Merge adjacent same-type primitive layers (Sec. IV-B). Must match
    /// between peers — it shapes the topology digest.
    pub merge_stages: bool,
    /// Socket knobs: connect retry/backoff, read/write timeouts, seq
    /// validation.
    pub tcp: TcpConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            key_bits: 512,
            seed: 0x9950_57EA,
            threads: 2,
            merge_stages: true,
            tcp: TcpConfig::new(),
        }
    }
}

impl NetConfig {
    /// A fast configuration for tests: tiny key, short timeouts.
    pub fn small_test(key_bits: usize) -> Self {
        NetConfig {
            key_bits,
            seed: 42,
            tcp: TcpConfig::new().with_timeouts(
                Duration::from_secs(30),
                Duration::from_secs(30),
            ),
            ..Default::default()
        }
    }
}

/// Client-side transport statistics, surfaced through
/// [`RunReport::transport`] and returned by
/// [`NetworkedSession::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct TransportReport {
    /// Frames sent to the model provider.
    pub frames_sent: u64,
    /// Frames received from the model provider.
    pub frames_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Connection attempts the retry loop used (1 = first try).
    pub connect_attempts: u32,
    /// Whether the connection ended without a transport error.
    pub clean_shutdown: bool,
}

/// Server-side statistics for one served connection.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Inference requests completed (distinct request seqs finished).
    pub requests: u64,
    /// Frames received from the data provider (handshake included).
    pub frames_in: u64,
    /// Frames sent to the data provider.
    pub frames_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// True when the client closed the connection between frames (a
    /// mid-frame disconnect is an error, not a clean shutdown).
    pub clean_shutdown: bool,
}

/// FNV-1a 64-bit — stable, dependency-free fingerprint for handshake
/// digests (not cryptographic; the handshake detects misconfiguration,
/// not adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a public key's modulus bytes.
pub fn pk_fingerprint(pk_n: &[u8]) -> u64 {
    fnv1a64(pk_n)
}

/// Digest of the merged-stage topology: stage roles, shapes, op kinds
/// and their cheap structural parameters (window sizes, rescales, weight
/// element counts) — **not** the weight values, which never leave the
/// model provider. Two peers agree on this digest iff they encapsulated
/// the same model architecture at the same scaling factor.
pub fn topology_digest(stages: &[MergedStage], factor: i64) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&factor.to_le_bytes());
    buf.extend_from_slice(&(stages.len() as u64).to_le_bytes());
    for stage in stages {
        buf.push(match stage.role {
            StageRole::Linear => 1,
            StageRole::NonLinear => 2,
        });
        for shape in [&stage.input_shape, &stage.output_shape] {
            buf.extend_from_slice(&(shape.dims().len() as u64).to_le_bytes());
            for &d in shape.dims() {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
        }
        buf.extend_from_slice(&(stage.ops.len() as u64).to_le_bytes());
        for op in &stage.ops {
            match op {
                ScaledOp::Conv2d { weights, bias, .. } => {
                    buf.push(1);
                    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
                    buf.extend_from_slice(&(bias.len() as u64).to_le_bytes());
                }
                ScaledOp::Dense { weights, bias } => {
                    buf.push(2);
                    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
                    buf.extend_from_slice(&(bias.len() as u64).to_le_bytes());
                }
                ScaledOp::Affine { scale, .. } => {
                    buf.push(3);
                    buf.extend_from_slice(&(scale.len() as u64).to_le_bytes());
                }
                ScaledOp::ScaleMul { alpha } => {
                    buf.push(4);
                    buf.extend_from_slice(&alpha.to_le_bytes());
                }
                ScaledOp::ReLU { rescale } => {
                    buf.push(5);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::Sigmoid { rescale } => {
                    buf.push(6);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::SoftMax { rescale } => {
                    buf.push(7);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::MaxPool { window, stride, rescale } => {
                    buf.push(8);
                    buf.extend_from_slice(&(*window as u64).to_le_bytes());
                    buf.extend_from_slice(&(*stride as u64).to_le_bytes());
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::SumPool { window, stride } => {
                    buf.push(9);
                    buf.extend_from_slice(&(*window as u64).to_le_bytes());
                    buf.extend_from_slice(&(*stride as u64).to_le_bytes());
                }
                ScaledOp::Flatten => buf.push(10),
            }
        }
    }
    fnv1a64(&buf)
}

fn handshake_err(context: impl Into<String>) -> StreamError {
    StreamError::transport(TransportErrorKind::Handshake, context)
}

// ---------------------------------------------------------------------------
// Model provider (server)
// ---------------------------------------------------------------------------

/// The model-provider server: serves the linear stages of one scaled
/// model over a framed TCP connection.
pub struct ModelProvider {
    stages: Vec<MergedStage>,
    topology: u64,
    factor: i64,
    seed: u64,
    pool: WorkerPool,
    tcp: TcpConfig,
}

impl ModelProvider {
    /// Encapsulates the model into merged stages and prepares the server.
    pub fn new(model: &ScaledModel, config: &NetConfig) -> Result<Self, CoreError> {
        let stages = encapsulate_with(model, config.merge_stages)?;
        let topology = topology_digest(&stages, model.factor());
        Ok(ModelProvider {
            stages,
            topology,
            factor: model.factor(),
            seed: config.seed,
            pool: WorkerPool::new(config.threads.max(1)),
            tcp: config.tcp.clone(),
        })
    }

    /// The topology digest clients must present.
    pub fn topology(&self) -> u64 {
        self.topology
    }

    /// Binds `addr` and serves exactly one client connection to
    /// completion. Returns the bound address alongside the report so
    /// `127.0.0.1:0` callers can learn the assigned port — though for
    /// that pattern [`ModelProvider::serve_listener`] with a pre-bound
    /// listener avoids the race entirely.
    pub fn serve_once(
        &self,
        addr: impl ToSocketAddrs,
    ) -> Result<(ServeReport, std::net::SocketAddr), CoreError> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            CoreError::from(StreamError::transport(TransportErrorKind::Bind, format!("bind: {e}")))
        })?;
        let local = listener.local_addr().map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Bind,
                format!("local addr: {e}"),
            ))
        })?;
        let report = self.serve_listener(&listener)?;
        Ok((report, local))
    }

    /// Accepts one client on a pre-bound listener and serves it to
    /// completion: handshake, then one reply frame per linear-stage
    /// request frame, until the client closes the connection.
    pub fn serve_listener(&self, listener: &TcpListener) -> Result<ServeReport, CoreError> {
        let (mut tx, mut rx) = tcp::accept_on(listener, &self.tcp)?;
        let mut report = ServeReport::default();

        // --- Handshake -----------------------------------------------------
        let hello_frame = rx
            .recv()
            .map_err(|e| e.at_stage("handshake"))?
            .ok_or_else(|| handshake_err("client closed before sending hello"))?;
        report.frames_in += 1;
        report.bytes_in += hello_frame.payload.len() as u64;
        let hello: HelloMsg = from_frame(hello_frame.payload)
            .map_err(|_| handshake_err("first frame was not a hello message"))?;

        if let Some(reason) = self.validate_hello(&hello) {
            // The report is discarded on the error path, so no counting.
            let payload = to_frame(&RejectMsg { reason: reason.clone() });
            tx.send_payload(payload).map_err(|e| e.at_stage("handshake reject"))?;
            return Err(CoreError::from(handshake_err(format!("rejected client: {reason}"))));
        }

        let pk = PublicKey::from_n(BigUint::from_bytes_be(&hello.pk_n));
        let accept = to_frame(&AcceptMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: hello.pk_fingerprint,
            topology: self.topology,
        });
        report.bytes_out += accept.len() as u64;
        report.frames_out += 1;
        tx.send_payload(accept).map_err(|e| e.at_stage("handshake accept"))?;

        // --- Serve linear rounds ------------------------------------------
        let execs = self.build_linear_execs(&pk);
        let n_linear = execs.len();
        // Requests arrive with their linear rounds in order; track each
        // request's next round index.
        let mut next_round: HashMap<u64, usize> = HashMap::new();

        loop {
            let frame = match rx.recv().map_err(|e| e.at_stage("linear request"))? {
                Some(f) => f,
                None => {
                    report.clean_shutdown = true;
                    return Ok(report);
                }
            };
            report.frames_in += 1;
            report.bytes_in += frame.payload.len() as u64;
            let msg: EncTensorMsg = from_frame(frame.payload).map_err(CoreError::from)?;

            let round = *next_round.entry(msg.seq).or_insert(0);
            if round >= n_linear {
                let err = StreamError::Stage(format!(
                    "request {} sent more linear rounds than the model has ({n_linear})",
                    msg.seq
                ));
                return Err(CoreError::from(err));
            }
            let seq = msg.seq;
            let out = execs[round].execute(msg, &self.pool).map_err(CoreError::from)?;
            if round + 1 == n_linear {
                next_round.remove(&seq);
                report.requests += 1;
            } else {
                next_round.insert(seq, round + 1);
            }

            let payload = to_frame(&out);
            report.bytes_out += payload.len() as u64;
            report.frames_out += 1;
            tx.send_payload(payload)
                .map_err(|e| e.at_stage(&format!("linear-{round} reply for request {seq}")))?;
        }
    }

    /// `None` when the hello is acceptable, otherwise the rejection
    /// reason sent back to the client.
    fn validate_hello(&self, hello: &HelloMsg) -> Option<String> {
        if hello.version != PROTOCOL_VERSION {
            return Some(format!(
                "protocol version mismatch: server speaks {PROTOCOL_VERSION}, client {}",
                hello.version
            ));
        }
        if pk_fingerprint(&hello.pk_n) != hello.pk_fingerprint {
            return Some("public-key fingerprint does not match the key bytes".into());
        }
        if hello.factor != self.factor {
            return Some(format!(
                "scaling factor mismatch: server {}, client {}",
                self.factor, hello.factor
            ));
        }
        if hello.n_stages as usize != self.stages.len() || hello.topology != self.topology {
            return Some(format!(
                "model topology mismatch: server digest {:#018x} ({} stages), \
                 client digest {:#018x} ({} stages)",
                self.topology,
                self.stages.len(),
                hello.topology,
                hello.n_stages
            ));
        }
        None
    }

    fn build_linear_execs(&self, pk: &PublicKey) -> Vec<LinearStage> {
        let perms = Arc::new(PermStore::default());
        let n_linear = self.stages.iter().filter(|s| s.role == StageRole::Linear).count();
        let mut linear_idx = 0usize;
        let mut execs = Vec::with_capacity(n_linear);
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.role != StageRole::Linear {
                continue;
            }
            execs.push(LinearStage {
                pk: pk.clone(),
                stage: stage.clone(),
                linear_idx,
                is_first: linear_idx == 0,
                is_last: linear_idx == n_linear - 1,
                perms: Arc::clone(&perms),
                mode: PartitionMode::Partitioned,
                seed: self.seed ^ 0x11AE ^ (i as u64) << 8,
                intra_bytes: Arc::new(AtomicU64::new(0)),
            });
            linear_idx += 1;
        }
        execs
    }
}

// ---------------------------------------------------------------------------
// Data provider (client)
// ---------------------------------------------------------------------------

/// One protocol step as seen from the client: a socket round trip to the
/// server's next linear stage, or a local non-linear stage.
enum ClientStep {
    Linear { round: usize },
    NonLinear(Box<NonLinearStage>),
}

/// The data-provider client: a connected, handshaken session against a
/// [`ModelProvider`].
pub struct NetworkedSession {
    tx: TcpFrameSender,
    rx: TcpFrameReceiver,
    scaled: ScaledModel,
    steps: Vec<ClientStep>,
    encrypt: EncryptStage,
    pool: WorkerPool,
    transport: TransportReport,
}

impl NetworkedSession {
    /// Connects (with the configured retry/backoff), generates the
    /// Paillier keypair, and performs the deployment handshake. A server
    /// rejection or a version/echo mismatch surfaces as
    /// `Transport { kind: Handshake, .. }`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        scaled: ScaledModel,
        config: &NetConfig,
    ) -> Result<Self, CoreError> {
        let connected = tcp::connect_with(addr, &config.tcp)?;
        let (mut tx, mut rx) = (connected.tx, connected.rx);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let keypair = Keypair::generate(config.key_bits, &mut rng);
        let stages = encapsulate_with(&scaled, config.merge_stages)?;
        let topology = topology_digest(&stages, scaled.factor());

        let pk_n = keypair.public().n().to_bytes_be();
        let fingerprint = pk_fingerprint(&pk_n);
        let hello = to_frame(&HelloMsg {
            version: PROTOCOL_VERSION,
            pk_n,
            pk_fingerprint: fingerprint,
            topology,
            n_stages: stages.len() as u32,
            factor: scaled.factor(),
        });

        let mut transport = TransportReport {
            connect_attempts: connected.attempts,
            ..Default::default()
        };
        transport.bytes_sent += hello.len() as u64;
        transport.frames_sent += 1;
        tx.send_payload(hello).map_err(|e| e.at_stage("handshake hello"))?;

        let reply = rx
            .recv()
            .map_err(|e| e.at_stage("handshake reply"))?
            .ok_or_else(|| handshake_err("server closed without answering hello"))?;
        transport.bytes_received += reply.payload.len() as u64;
        transport.frames_received += 1;
        match crate::messages::peek_tag(&reply.payload) {
            Some(MsgTag::Accept) => {
                let accept: AcceptMsg = from_frame(reply.payload).map_err(CoreError::from)?;
                if accept.version != PROTOCOL_VERSION
                    || accept.pk_fingerprint != fingerprint
                    || accept.topology != topology
                {
                    return Err(CoreError::from(handshake_err(
                        "server accept did not echo the agreed parameters",
                    )));
                }
            }
            Some(MsgTag::Reject) => {
                let reject: RejectMsg = from_frame(reply.payload).map_err(CoreError::from)?;
                return Err(CoreError::from(handshake_err(format!(
                    "server rejected handshake: {}",
                    reject.reason
                ))));
            }
            _ => {
                return Err(CoreError::from(handshake_err(
                    "unexpected reply to hello (neither accept nor reject)",
                )));
            }
        }

        // Client-side execution plan: socket round trips for linear
        // stages, local executors for the rest (same construction as the
        // in-process session, so results match bit-for-bit).
        let n = stages.len();
        let mut round = 0usize;
        let steps = stages
            .iter()
            .enumerate()
            .map(|(i, stage)| match stage.role {
                StageRole::Linear => {
                    let step = ClientStep::Linear { round };
                    round += 1;
                    step
                }
                StageRole::NonLinear => ClientStep::NonLinear(Box::new(NonLinearStage {
                    keypair: keypair.clone(),
                    stage: stage.clone(),
                    factor: scaled.factor(),
                    is_last: i == n - 1,
                    seed: config.seed ^ 0x2020 ^ (i as u64) << 8,
                })),
            })
            .collect();

        Ok(NetworkedSession {
            tx,
            rx,
            scaled,
            steps,
            encrypt: EncryptStage { pk: keypair.public(), seed: config.seed ^ 0x0E2C },
            pool: WorkerPool::new(config.threads.max(1)),
            transport,
        })
    }

    /// Transport statistics so far.
    pub fn transport(&self) -> &TransportReport {
        &self.transport
    }

    /// Streams inference requests through the deployment (sequentially,
    /// one socket round trip per linear stage), returning the scaled
    /// output tensors and a run report whose
    /// [`transport`](RunReport::transport) field carries the socket-level
    /// statistics.
    pub fn infer_stream(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<Tensor<i64>>, RunReport), CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::Runtime("no inputs".into()));
        }
        let t_run = Instant::now();
        let mut latencies = Vec::with_capacity(inputs.len());
        let mut outputs = Vec::with_capacity(inputs.len());

        for (seq, input) in inputs.iter().enumerate() {
            let t0 = Instant::now();
            let scaled_in = self.scaled.scale_input(input);
            let plain = PlainTensorMsg {
                seq: seq as u64,
                shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                values: scaled_in.data().iter().map(|&v| v as i128).collect(),
            };
            let out = self.run_request(plain)?;
            latencies.push(t0.elapsed());

            let shape: Vec<usize> = out.shape.iter().map(|&d| d as usize).collect();
            let values: Vec<i64> = out
                .values
                .iter()
                .map(|&v| i64::try_from(v).expect("final logits fit i64"))
                .collect();
            outputs.push(
                Tensor::from_vec(shape, values).map_err(|e| CoreError::Runtime(e.to_string()))?,
            );
        }

        let makespan = t_run.elapsed();
        let mean_latency = latencies.iter().sum::<Duration>() / latencies.len() as u32;
        let mut transport = self.transport.clone();
        transport.clean_shutdown = true; // no transport error reached here
        let report = RunReport {
            latencies,
            makespan,
            mean_latency,
            // One physical link: request and reply directions.
            link_bytes: vec![transport.bytes_sent, transport.bytes_received],
            intra_stage_bytes: 0, // linear dispatch happens server-side
            stage_names: self.stage_names(),
            stage_busy: vec![],
            stage_threads: vec![],
            stages: vec![],
            transport: Some(transport),
        };
        Ok((outputs, report))
    }

    /// Streams requests and returns the predicted class per input.
    pub fn classify_stream(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<usize>, RunReport), CoreError> {
        let (outputs, report) = self.infer_stream(inputs)?;
        let classes = outputs.iter().map(pp_nn::activation::argmax_i64).collect();
        Ok((classes, report))
    }

    /// Closes the connection (the server observes a clean EOF between
    /// frames) and returns the final transport statistics.
    pub fn shutdown(mut self) -> TransportReport {
        self.transport.clean_shutdown = true;
        // Dropping both halves closes the socket's two cloned handles.
        self.transport
    }

    fn run_request(&mut self, plain: PlainTensorMsg) -> Result<PlainTensorMsg, CoreError> {
        let seq = plain.seq;
        let mut msg = self.encrypt.encrypt(plain, &self.pool);
        let last = self.steps.len() - 1;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ClientStep::Linear { round } => {
                    let stage_name = format!("linear-{round}@model (request {seq})");
                    let payload = to_frame(&msg);
                    self.transport.bytes_sent += payload.len() as u64;
                    self.transport.frames_sent += 1;
                    self.tx
                        .send_payload(payload)
                        .map_err(|e| e.at_stage(&format!("{stage_name} send")))?;
                    let frame = self
                        .rx
                        .recv()
                        .map_err(|e| e.at_stage(&format!("{stage_name} reply")))?
                        .ok_or_else(|| {
                            StreamError::transport(
                                TransportErrorKind::Eof,
                                format!("server closed before the {stage_name} reply"),
                            )
                        })?;
                    self.transport.bytes_received += frame.payload.len() as u64;
                    self.transport.frames_received += 1;
                    msg = from_frame(frame.payload).map_err(CoreError::from)?;
                }
                ClientStep::NonLinear(nl) => {
                    if i == last {
                        return Ok(nl.execute_final(msg, &self.pool));
                    }
                    msg = nl.execute(msg, &self.pool);
                }
            }
        }
        Err(CoreError::Runtime(
            "pipeline must end with a final non-linear stage".into(),
        ))
    }

    fn stage_names(&self) -> Vec<String> {
        let mut names = vec!["encrypt@data".to_string()];
        let mut ni = 0;
        for step in &self.steps {
            match step {
                ClientStep::Linear { round } => names.push(format!("linear-{round}@model")),
                ClientStep::NonLinear(_) => {
                    names.push(format!("nonlinear-{ni}@data"));
                    ni += 1;
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::zoo;

    fn model(seed: u64) -> ScaledModel {
        let mut rng = StdRng::seed_from_u64(seed);
        ScaledModel::from_model(&zoo::mlp("m", &[4, 6, 3], &mut rng).unwrap(), 100)
    }

    #[test]
    fn topology_digest_is_stable_and_discriminating() {
        let m = model(1);
        let stages = encapsulate_with(&m, true).unwrap();
        let d1 = topology_digest(&stages, m.factor());
        let d2 = topology_digest(&stages, m.factor());
        assert_eq!(d1, d2, "digest must be deterministic");
        assert_ne!(d1, topology_digest(&stages, m.factor() + 1), "factor changes digest");

        let other = model(1); // same weights, same architecture
        let other_stages = encapsulate_with(&other, true).unwrap();
        assert_eq!(d1, topology_digest(&other_stages, other.factor()));

        let mut rng = StdRng::seed_from_u64(1);
        let wider = ScaledModel::from_model(&zoo::mlp("m", &[4, 7, 3], &mut rng).unwrap(), 100);
        let wider_stages = encapsulate_with(&wider, true).unwrap();
        assert_ne!(
            d1,
            topology_digest(&wider_stages, wider.factor()),
            "different architecture must change the digest"
        );
    }

    #[test]
    fn fingerprint_differs_for_different_keys() {
        assert_ne!(pk_fingerprint(&[1, 2, 3]), pk_fingerprint(&[1, 2, 4]));
        assert_eq!(pk_fingerprint(b"same"), pk_fingerprint(b"same"));
    }

    #[test]
    fn hello_validation_names_each_mismatch() {
        let m = model(2);
        let provider = ModelProvider::new(&m, &NetConfig::small_test(128)).unwrap();
        let pk_n = vec![7u8; 16];
        let good = HelloMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: pk_fingerprint(&pk_n),
            pk_n,
            topology: provider.topology(),
            n_stages: provider.stages.len() as u32,
            factor: m.factor(),
        };
        assert_eq!(provider.validate_hello(&good), None);

        let mut bad = good.clone();
        bad.version += 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("version"));

        let mut bad = good.clone();
        bad.pk_fingerprint ^= 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("fingerprint"));

        let mut bad = good.clone();
        bad.factor += 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("factor"));

        let mut bad = good;
        bad.topology ^= 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("topology"));
    }
}
