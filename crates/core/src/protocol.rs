//! Stage executors implementing the collaborative workflow of paper
//! Fig. 3 / Fig. 4:
//!
//! * [`EncryptStage`] — data provider: scale + encrypt the raw input
//!   (Step 1.1);
//! * [`LinearStage`] — model provider: inverse obfuscation (Steps 2.5 /
//!   3.2), homomorphic linear operations (1.3 / 2.6 / 3.3), obfuscation
//!   (1.4 / 2.7; skipped in the last round, 3.4);
//! * [`NonLinearStage`] — data provider: decryption (2.1 / 3.5),
//!   non-linear operations on permuted values (2.2 / 3.6), re-encryption
//!   (2.3) — or, in the final round, the cleartext inference result (3.7).
//!
//! Tensor partitioning (Sec. IV-D) is implemented here as well: each
//! worker-thread task is *sent* (serialized + deserialized, byte-counted)
//! either the whole input tensor (no partitioning: one task per output
//! element), the whole tensor once per thread (output partitioning), or
//! only the receptive-field sub-tensor (input + output partitioning,
//! convolutions only).

use crate::encapsulate::{MergedStage, StageRole};
use crate::encctx::EncCtx;
use crate::messages::{EncTensorMsg, PlainTensorMsg};
use parking_lot::Mutex;
use pp_nn::activation::sigmoid_scalar;
use pp_nn::scaling::{div_round, ScaledOp};
use pp_obfuscate::Permutation;
use pp_paillier::{Ciphertext, Keypair, PublicKey, RandomnessPool};
use pp_stream_runtime::{Stage, StageContext, StreamError, WorkerPool};
use pp_tensor::ops::{
    conv2d_range, conv_input_indices_for_range, fully_connected_range,
    pool_input_indices_for_range, sum_pool2d_range,
};
use pp_tensor::LinearAlgebra;
use pp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Permutations drawn by linear stages, awaiting inversion by the next
/// linear stage — shared state within the model provider. Keyed by
/// `(request seq, linear stage index)`.
#[derive(Default)]
pub struct PermStore {
    map: Mutex<HashMap<(u64, usize), Permutation>>,
}

impl PermStore {
    pub(crate) fn put(&self, seq: u64, linear_idx: usize, perm: Permutation) {
        self.map.lock().insert((seq, linear_idx), perm);
    }
    pub(crate) fn take(&self, seq: u64, linear_idx: usize) -> Option<Permutation> {
        self.map.lock().remove(&(seq, linear_idx))
    }
}

/// SplitMix64 — deterministic seed derivation for per-(stage, request)
/// randomness.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub(crate) fn shape_to_wire(shape: &Shape) -> Vec<u64> {
    shape.dims().iter().map(|&d| d as u64).collect()
}

/// Serializes a slice of ciphertexts (the "send" half of a worker task).
fn cts_to_bytes(cts: &[Ciphertext]) -> Vec<Vec<u8>> {
    cts.iter().map(Ciphertext::to_bytes).collect()
}

/// Data provider: scales are already applied by the session; this stage
/// encrypts every element under the data provider's public key.
///
/// When a [`RandomnessPool`] is attached, the expensive `r^n` blinding
/// factors are popped from the pool (precomputed off the request path)
/// and each element costs only `g^m` and one modular multiplication; a
/// drained pool falls back to inline exponentiation, counted by the
/// pool's miss statistic.
pub struct EncryptStage {
    pub pk: PublicKey,
    pub seed: u64,
    /// Precomputed `r^n` factors; `None` encrypts inline.
    pub rand_pool: Option<Arc<Mutex<RandomnessPool>>>,
}

impl EncryptStage {
    /// Encrypts a plaintext scaled tensor (Step 1.1 + 1.2).
    pub fn encrypt(&self, msg: PlainTensorMsg, pool: &WorkerPool) -> EncTensorMsg {
        let pk = self.pk.clone();
        let values: Arc<Vec<i128>> = Arc::new(msg.values);
        let seed = mix(self.seed ^ msg.seq.wrapping_mul(0x517c_c1b7));
        let n = values.len();
        // Pop the whole batch under one short lock; workers then run
        // lock-free. Missing factors (drained pool) fall back to inline
        // exponentiation in the worker, and the pool counts each miss.
        let factors: Arc<Vec<Option<pp_bigint::BigUint>>> = Arc::new(match &self.rand_pool {
            Some(rp) => {
                let mut rp = rp.lock();
                (0..n).map(|_| rp.take_factor()).collect()
            }
            None => vec![None; n],
        });
        let values2 = Arc::clone(&values);
        let cts: Vec<Vec<u8>> = pool.map_ranges(n, move |r| {
            let mut rng = StdRng::seed_from_u64(mix(seed ^ r.start as u64));
            r.map(|i| {
                let v = i64::try_from(values2[i]).expect("scaled input fits i64");
                match &factors[i] {
                    Some(rn) => pk.encrypt_i64_with_factor(v, rn).to_bytes(),
                    None => pk.encrypt_i64(v, &mut rng).to_bytes(),
                }
            })
            .collect()
        });
        EncTensorMsg { seq: msg.seq, shape: msg.shape, obfuscated: false, cts }
    }
}

impl Stage for EncryptStage {
    type In = PlainTensorMsg;
    type Out = EncTensorMsg;

    fn process(&self, msg: PlainTensorMsg, cx: &mut StageContext) -> Result<EncTensorMsg, StreamError> {
        Ok(self.encrypt(msg, cx.pool()))
    }
}

/// How a linear stage distributes work to its threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// One task per output element, whole input tensor shipped per task
    /// (the paper's "without tensor partitioning" baseline).
    None,
    /// One task per thread chunk; whole input for dense layers (output
    /// partitioning), receptive-field sub-tensor for convolutions (input
    /// + output partitioning).
    Partitioned,
}

/// Model provider: homomorphic linear operations with obfuscation
/// management.
pub struct LinearStage {
    pub pk: PublicKey,
    pub stage: MergedStage,
    /// Index among linear stages (0-based).
    pub linear_idx: usize,
    /// First linear stage receives non-obfuscated input (Step 1.2).
    pub is_first: bool,
    /// Last linear stage sends without obfuscation (Step 3.4).
    pub is_last: bool,
    pub perms: Arc<PermStore>,
    pub mode: PartitionMode,
    pub seed: u64,
    /// Bytes shipped to worker threads (the Sec. IV-D communication).
    pub intra_bytes: Arc<AtomicU64>,
}

impl LinearStage {
    /// Full linear-stage round: inverse obfuscation → linear ops →
    /// obfuscation. Fails when the preceding linear stage's permutation
    /// is missing (a protocol-ordering violation), which stops the
    /// pipeline cleanly instead of panicking its stage thread.
    pub fn execute(&self, msg: EncTensorMsg, pool: &WorkerPool) -> Result<EncTensorMsg, StreamError> {
        assert_eq!(self.stage.role, StageRole::Linear, "misconfigured stage");
        let seq = msg.seq;
        let mut cts: Vec<Ciphertext> =
            msg.cts.iter().map(|b| Ciphertext::from_bytes(b)).collect();

        // Inverse obfuscation (Steps 2.5 / 3.2).
        if !self.is_first {
            let perm = self.perms.take(seq, self.linear_idx - 1).ok_or_else(|| {
                StreamError::Stage(format!(
                    "linear stage {} has no stored permutation for request {seq}",
                    self.linear_idx
                ))
            })?;
            cts = perm.invert(&cts).map_err(|e| {
                StreamError::Stage(format!("inverse obfuscation failed: {e}"))
            })?;
        }

        // Homomorphic linear ops.
        let mut shape = self.stage.input_shape.clone();
        let mut tensor = Tensor::from_vec(shape.clone(), cts).expect("shape matches");
        for op in &self.stage.ops {
            let out_shape =
                crate::encapsulate::op_output_shape(op, &shape).expect("validated at build");
            tensor = self.run_op(op, tensor, &out_shape, pool);
            shape = out_shape;
        }

        // Obfuscation (Steps 1.4 / 2.7), skipped in the last round (3.4).
        let mut out = tensor.into_data();
        let obfuscated = if self.is_last {
            false
        } else {
            let mut rng =
                StdRng::seed_from_u64(mix(self.seed ^ mix(seq) ^ self.linear_idx as u64));
            let perm = Permutation::random(out.len(), &mut rng);
            out = perm.apply(&out).expect("lengths match");
            self.perms.put(seq, self.linear_idx, perm);
            true
        };

        Ok(EncTensorMsg {
            seq,
            shape: shape_to_wire(&shape),
            obfuscated,
            cts: cts_to_bytes(&out),
        })
    }

    /// Executes one linear op with the configured partitioning mode.
    fn run_op(
        &self,
        op: &ScaledOp,
        input: Tensor<Ciphertext>,
        out_shape: &Shape,
        pool: &WorkerPool,
    ) -> Tensor<Ciphertext> {
        let pk = self.pk.clone();
        let intra = Arc::clone(&self.intra_bytes);
        match op {
            ScaledOp::Flatten => input.flatten(),
            ScaledOp::ScaleMul { alpha } => {
                // Element-wise: threads receive exactly their slice.
                let alpha = *alpha;
                let data = Arc::new(input.into_data());
                let n = data.len();
                let out = pool.map_ranges(n, move |r| {
                    let ctx = EncCtx { pk: &pk };
                    let sub = cts_to_bytes(&data[r.clone()]);
                    intra.fetch_add(
                        sub.iter().map(|b| b.len() as u64).sum::<u64>(),
                        Ordering::Relaxed,
                    );
                    sub.iter()
                        .map(|b| ctx.mul(alpha, &Ciphertext::from_bytes(b)))
                        .collect::<Vec<_>>()
                });
                Tensor::from_vec(out_shape.clone(), out).expect("sized output")
            }
            ScaledOp::Affine { scale, shift } => {
                let scale = scale.clone();
                let shift = shift.clone();
                let channels = scale.len();
                let per_channel = input.len() / channels;
                let data = Arc::new(input.into_data());
                let n = data.len();
                let out = pool.map_ranges(n, move |r| {
                    let ctx = EncCtx { pk: &pk };
                    let sub = cts_to_bytes(&data[r.clone()]);
                    intra.fetch_add(
                        sub.iter().map(|b| b.len() as u64).sum::<u64>(),
                        Ordering::Relaxed,
                    );
                    r.zip(sub.iter())
                        .map(|(i, b)| {
                            let c = i / per_channel;
                            let x = Ciphertext::from_bytes(b);
                            ctx.add(&ctx.mul(scale[c], &x), &ctx.constant(shift[c]))
                        })
                        .collect::<Vec<_>>()
                });
                Tensor::from_vec(out_shape.clone(), out).expect("sized output")
            }
            ScaledOp::Dense { weights, bias } => {
                let weights = Arc::new(weights.clone());
                let bias = Arc::new(bias.clone());
                // Simulated send: serialize the whole input once.
                let input_bytes = Arc::new(cts_to_bytes(input.data()));
                let in_shape = input.shape().clone();
                let out_f = out_shape.len();
                let mode = self.mode;
                let total_in: u64 = input_bytes.iter().map(|b| b.len() as u64).sum();
                let out = pool.map_ranges(out_f, move |r| {
                    let ctx = EncCtx { pk: &pk };
                    match mode {
                        PartitionMode::Partitioned => {
                            // Whole input shipped once per chunk (output
                            // partitioning), then the whole range computed.
                            intra.fetch_add(total_in, Ordering::Relaxed);
                            let inp = deserialize_tensor(&input_bytes, &in_shape);
                            fully_connected_range(&ctx, &inp, &weights, &bias, r)
                                .expect("validated shapes")
                        }
                        PartitionMode::None => {
                            // Whole input shipped per output element.
                            let mut out = Vec::with_capacity(r.len());
                            for j in r {
                                intra.fetch_add(total_in, Ordering::Relaxed);
                                let inp = deserialize_tensor(&input_bytes, &in_shape);
                                out.extend(
                                    fully_connected_range(&ctx, &inp, &weights, &bias, j..j + 1)
                                        .expect("validated shapes"),
                                );
                            }
                            out
                        }
                    }
                });
                Tensor::from_vec(out_shape.clone(), out).expect("sized output")
            }
            ScaledOp::Conv2d { spec, weights, bias } => {
                let spec = spec.clone();
                let weights = Arc::new(weights.clone());
                let bias = Arc::new(bias.clone());
                let input_bytes = Arc::new(cts_to_bytes(input.data()));
                let in_shape = input.shape().clone();
                let n_out = out_shape.len();
                let mode = self.mode;
                let total_in: u64 = input_bytes.iter().map(|b| b.len() as u64).sum();
                let out = pool.map_ranges(n_out, move |r| {
                    let ctx = EncCtx { pk: &pk };
                    match mode {
                        PartitionMode::Partitioned => {
                            // Input + output partitioning: ship only the
                            // receptive-field sub-tensor of this range.
                            let needed =
                                conv_input_indices_for_range(&in_shape, &spec, r.clone())
                                    .expect("validated shapes");
                            let sub_bytes: u64 =
                                needed.iter().map(|&i| input_bytes[i].len() as u64).sum();
                            intra.fetch_add(sub_bytes, Ordering::Relaxed);
                            let inp =
                                deserialize_sparse(&input_bytes, &needed, &in_shape);
                            conv2d_range(&ctx, &inp, &weights, &bias, &spec, r)
                                .expect("validated shapes")
                        }
                        PartitionMode::None => {
                            let mut out = Vec::with_capacity(r.len());
                            for e in r {
                                intra.fetch_add(total_in, Ordering::Relaxed);
                                let inp = deserialize_tensor(&input_bytes, &in_shape);
                                out.extend(
                                    conv2d_range(&ctx, &inp, &weights, &bias, &spec, e..e + 1)
                                        .expect("validated shapes"),
                                );
                            }
                            out
                        }
                    }
                });
                Tensor::from_vec(out_shape.clone(), out).expect("sized output")
            }
            ScaledOp::SumPool { window, stride } => {
                let (window, stride) = (*window, *stride);
                let input_bytes = Arc::new(cts_to_bytes(input.data()));
                let in_shape = input.shape().clone();
                let n_out = out_shape.len();
                let mode = self.mode;
                let total_in: u64 = input_bytes.iter().map(|b| b.len() as u64).sum();
                let out = pool.map_ranges(n_out, move |r| {
                    let ctx = EncCtx { pk: &pk };
                    match mode {
                        PartitionMode::Partitioned => {
                            let needed = pool_input_indices_for_range(
                                &in_shape, window, stride, r.clone(),
                            )
                            .expect("validated shapes");
                            let sub_bytes: u64 =
                                needed.iter().map(|&i| input_bytes[i].len() as u64).sum();
                            intra.fetch_add(sub_bytes, Ordering::Relaxed);
                            let inp = deserialize_sparse(&input_bytes, &needed, &in_shape);
                            sum_pool2d_range(&ctx, &inp, window, stride, r)
                                .expect("validated shapes")
                        }
                        PartitionMode::None => {
                            let mut out = Vec::with_capacity(r.len());
                            for e in r {
                                intra.fetch_add(total_in, Ordering::Relaxed);
                                let inp = deserialize_tensor(&input_bytes, &in_shape);
                                out.extend(
                                    sum_pool2d_range(&ctx, &inp, window, stride, e..e + 1)
                                        .expect("validated shapes"),
                                );
                            }
                            out
                        }
                    }
                });
                Tensor::from_vec(out_shape.clone(), out).expect("sized output")
            }
            // Non-linear ops never reach a linear stage.
            ScaledOp::ReLU { .. }
            | ScaledOp::Sigmoid { .. }
            | ScaledOp::SoftMax { .. }
            | ScaledOp::MaxPool { .. } => unreachable!("non-linear op in linear stage"),
        }
    }
}

impl Stage for LinearStage {
    type In = EncTensorMsg;
    type Out = EncTensorMsg;

    fn process(&self, msg: EncTensorMsg, cx: &mut StageContext) -> Result<EncTensorMsg, StreamError> {
        // Attribute this message's worker-dispatch bytes (Sec. IV-D) to
        // the stage's metrics. The stage instance is driven by a single
        // pipeline thread, so the before/after delta is this message's.
        let before = self.intra_bytes.load(Ordering::Relaxed);
        let out = self.execute(msg, cx.pool())?;
        let after = self.intra_bytes.load(Ordering::Relaxed);
        cx.record_serialized_bytes(after.saturating_sub(before));
        Ok(out)
    }
}

/// Rebuilds a full ciphertext tensor from serialized bytes (the "receive"
/// half of a worker task).
fn deserialize_tensor(bytes: &[Vec<u8>], shape: &Shape) -> Tensor<Ciphertext> {
    let cts: Vec<Ciphertext> = bytes.iter().map(|b| Ciphertext::from_bytes(b)).collect();
    Tensor::from_vec(shape.clone(), cts).expect("shape matches")
}

/// Rebuilds a sparse tensor: only `indices` are real; the rest are cheap
/// placeholders that the range kernel never reads.
fn deserialize_sparse(
    bytes: &[Vec<u8>],
    indices: &std::collections::BTreeSet<usize>,
    shape: &Shape,
) -> Tensor<Ciphertext> {
    let placeholder = Ciphertext::new(pp_bigint::BigUint::zero());
    let mut cts = vec![placeholder; bytes.len()];
    for &i in indices {
        cts[i] = Ciphertext::from_bytes(&bytes[i]);
    }
    Tensor::from_vec(shape.clone(), cts).expect("shape matches")
}

/// Data provider: decrypt, apply non-linear ops (on permuted values),
/// re-encrypt — or emit the cleartext result in the final round.
pub struct NonLinearStage {
    pub keypair: Keypair,
    pub stage: MergedStage,
    pub factor: i64,
    /// Final stage: no re-encryption, output is the inference result.
    pub is_last: bool,
    pub seed: u64,
}

impl NonLinearStage {
    /// Decrypt → non-linear ops → re-encrypt (Steps 2.1–2.3).
    /// Only valid for non-final stages. Fails cleanly (instead of
    /// panicking) when a ciphertext decrypts outside the message space —
    /// the signature of a corrupt or hostile upstream reply.
    pub fn execute(&self, msg: EncTensorMsg, pool: &WorkerPool) -> Result<EncTensorMsg, StreamError> {
        assert!(!self.is_last, "final stage must use execute_final");
        let values = self.decrypt_and_apply(&msg, pool)?;
        // Re-encrypt at scale F (fits i64 after rescaling). Range-check
        // before fanning out so an oversized activation is an error on
        // this item, not a worker panic.
        let scaled: Vec<i64> = values
            .iter()
            .map(|&v| i64::try_from(v))
            .collect::<Result<_, _>>()
            .map_err(|_| {
                StreamError::Stage(format!(
                    "rescaled activation exceeds i64 message space in round {}",
                    msg.seq
                ))
            })?;
        let pk = self.keypair.public();
        let seed = mix(self.seed ^ mix(msg.seq).rotate_left(17));
        let scaled = Arc::new(scaled);
        let n = scaled.len();
        let cts = pool.map_ranges(n, move |r| {
            let mut rng = StdRng::seed_from_u64(mix(seed ^ r.start as u64));
            r.map(|i| pk.encrypt_i64(scaled[i], &mut rng).to_bytes()).collect::<Vec<_>>()
        });
        Ok(EncTensorMsg { seq: msg.seq, shape: msg.shape, obfuscated: msg.obfuscated, cts })
    }

    /// Final round (Steps 3.5–3.7): decrypt and produce the cleartext
    /// scaled result — stays at the data provider.
    pub fn execute_final(
        &self,
        msg: EncTensorMsg,
        pool: &WorkerPool,
    ) -> Result<PlainTensorMsg, StreamError> {
        assert!(self.is_last, "non-final stage must use execute");
        assert!(!msg.obfuscated, "final round arrives without obfuscation (Step 3.4)");
        let values = self.decrypt_and_apply(&msg, pool)?;
        Ok(PlainTensorMsg { seq: msg.seq, shape: msg.shape, values })
    }

    fn decrypt_and_apply(
        &self,
        msg: &EncTensorMsg,
        pool: &WorkerPool,
    ) -> Result<Vec<i128>, StreamError> {
        assert_eq!(self.stage.role, StageRole::NonLinear, "misconfigured stage");
        let sk = self.keypair.private();
        // Decrypt in parallel (Step 2.1): the batch API splits each
        // ciphertext into its two CRT halves, so even a short tensor
        // saturates the pool at production key sizes.
        let cts: Vec<Ciphertext> = msg.cts.iter().map(|b| Ciphertext::from_bytes(b)).collect();
        let mut values = sk.try_decrypt_batch_i128(&cts, pool).map_err(|e| {
            StreamError::Stage(format!("decrypt failed in round {}: {e}", msg.seq))
        })?;
        self.apply_ops(&mut values);
        Ok(values)
    }

    /// The stage's non-linear ops, element-wise on already-decrypted
    /// values — valid on permuted positions (Step 2.2). Rescale divisors
    /// restore scale F first. Public so the packed-batch path can apply
    /// the *same* math to slot-scattered values and stay bit-identical
    /// to the unpacked protocol.
    pub fn apply_ops(&self, values: &mut [i128]) {
        for op in &self.stage.ops {
            match op {
                ScaledOp::ReLU { rescale } => {
                    for v in values.iter_mut() {
                        *v = div_round(*v, *rescale).max(0);
                    }
                }
                ScaledOp::Sigmoid { rescale } => {
                    let f = self.factor as f64;
                    for v in values.iter_mut() {
                        let x = div_round(*v, *rescale) as f64 / f;
                        *v = (sigmoid_scalar(x) * f).round() as i128;
                    }
                }
                ScaledOp::SoftMax { rescale } => {
                    // Monotone: rescale only; probabilities are recovered
                    // from the scaled logits by the session.
                    for v in values.iter_mut() {
                        *v = div_round(*v, *rescale);
                    }
                }
                other => unreachable!("op {other:?} in non-linear stage"),
            }
        }
    }
}

/// Mid-pipeline rounds: re-encrypted ciphertext tensor out.
impl Stage for NonLinearStage {
    type In = EncTensorMsg;
    type Out = EncTensorMsg;

    fn process(&self, msg: EncTensorMsg, cx: &mut StageContext) -> Result<EncTensorMsg, StreamError> {
        if self.is_last {
            return Err(StreamError::Stage(
                "final non-linear stage placed mid-pipeline; wrap it in FinalNonLinearStage".into(),
            ));
        }
        self.execute(msg, cx.pool())
    }
}

/// The final round of a [`NonLinearStage`] as a typed pipeline terminal:
/// consumes the last linear stage's ciphertexts, emits the cleartext
/// scaled result (Steps 3.5–3.7).
pub struct FinalNonLinearStage(pub Arc<NonLinearStage>);

impl Stage for FinalNonLinearStage {
    type In = EncTensorMsg;
    type Out = PlainTensorMsg;

    fn process(&self, msg: EncTensorMsg, cx: &mut StageContext) -> Result<PlainTensorMsg, StreamError> {
        if !self.0.is_last {
            return Err(StreamError::Stage(
                "non-final stage wrapped as the pipeline terminal".into(),
            ));
        }
        if msg.obfuscated {
            return Err(StreamError::Stage(
                "final round arrived obfuscated (Step 3.4 violated)".into(),
            ));
        }
        self.0.execute_final(msg, cx.pool())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulate::encapsulate;
    use pp_nn::{zoo, ScaledModel};
    use pp_stream_runtime::WorkerPool;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Keypair, WorkerPool) {
        let mut rng = StdRng::seed_from_u64(seed);
        (Keypair::generate(128, &mut rng), WorkerPool::new(2))
    }

    fn run_stages(
        kp: &Keypair,
        scaled: &ScaledModel,
        input: &pp_tensor::Tensor<f64>,
        mode: PartitionMode,
        pool: &WorkerPool,
    ) -> Vec<i128> {
        let stages = encapsulate(scaled).unwrap();
        let perms = Arc::new(PermStore::default());
        let intra = Arc::new(AtomicU64::new(0));
        let n_linear = stages.iter().filter(|s| s.role == StageRole::Linear).count();

        let enc = EncryptStage { pk: kp.public(), seed: 7, rand_pool: None };
        let scaled_in = scaled.scale_input(input);
        let mut msg = enc.encrypt(
            PlainTensorMsg {
                seq: 0,
                shape: shape_to_wire(input.shape()),
                values: scaled_in.data().iter().map(|&v| v as i128).collect(),
            },
            pool,
        );

        let mut linear_idx = 0usize;
        let mut final_values = None;
        for (i, stage) in stages.iter().enumerate() {
            match stage.role {
                StageRole::Linear => {
                    let exec = LinearStage {
                        pk: kp.public(),
                        stage: stage.clone(),
                        linear_idx,
                        is_first: linear_idx == 0,
                        is_last: linear_idx == n_linear - 1,
                        perms: Arc::clone(&perms),
                        mode,
                        seed: 11,
                        intra_bytes: Arc::clone(&intra),
                    };
                    msg = exec.execute(msg, pool).unwrap();
                    linear_idx += 1;
                }
                StageRole::NonLinear => {
                    let is_last = i == stages.len() - 1;
                    let exec = NonLinearStage {
                        keypair: kp.clone(),
                        stage: stage.clone(),
                        factor: scaled.factor(),
                        is_last,
                        seed: 13,
                    };
                    if is_last {
                        final_values = Some(exec.execute_final(msg.clone(), pool).unwrap().values);
                    } else {
                        msg = exec.execute(msg, pool).unwrap();
                    }
                }
            }
        }
        final_values.expect("model ends with non-linear stage")
    }

    #[test]
    fn full_protocol_matches_scaled_reference() {
        let (kp, pool) = setup(1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = zoo::mlp("m", &[4, 5, 3], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let input = pp_tensor::Tensor::from_flat(vec![0.5, -0.25, 0.75, 0.1]);

        let got = run_stages(&kp, &scaled, &input, PartitionMode::Partitioned, &pool);
        let want = scaled.forward_scaled(&scaled.scale_input(&input)).unwrap();
        assert_eq!(
            got,
            want.data().iter().map(|&v| v as i128).collect::<Vec<_>>(),
            "encrypted pipeline must match the scaled plaintext reference bit-for-bit"
        );
    }

    #[test]
    fn partition_modes_agree_on_results() {
        let (kp, pool) = setup(3);
        let mut rng = StdRng::seed_from_u64(4);
        let model = zoo::small_convnet("c", (1, 5, 5), 2, 3, &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let input = pp_tensor::Tensor::from_vec(
            vec![1, 5, 5],
            (0..25).map(|i| (i % 3) as f64 * 0.3 - 0.3).collect(),
        )
        .unwrap();
        let a = run_stages(&kp, &scaled, &input, PartitionMode::Partitioned, &pool);
        let b = run_stages(&kp, &scaled, &input, PartitionMode::None, &pool);
        assert_eq!(a, b);
    }

    #[test]
    fn partitioning_reduces_intra_stage_bytes() {
        let (kp, _) = setup(5);
        let pool = WorkerPool::new(4);
        let mut rng = StdRng::seed_from_u64(6);
        let model = zoo::small_convnet("c", (1, 6, 6), 2, 3, &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let stages = encapsulate(&scaled).unwrap();
        let conv_stage = stages[0].clone();
        let input_len = conv_stage.input_shape.len();

        let mut rng2 = StdRng::seed_from_u64(7);
        let cts: Vec<Vec<u8>> = (0..input_len)
            .map(|i| kp.public().encrypt_i64(i as i64, &mut rng2).to_bytes())
            .collect();
        let msg = EncTensorMsg {
            seq: 0,
            shape: shape_to_wire(&conv_stage.input_shape),
            obfuscated: false,
            cts,
        };

        let run = |mode: PartitionMode| {
            let intra = Arc::new(AtomicU64::new(0));
            let exec = LinearStage {
                pk: kp.public(),
                stage: conv_stage.clone(),
                linear_idx: 0,
                is_first: true,
                is_last: false,
                perms: Arc::new(PermStore::default()),
                mode,
                seed: 1,
                intra_bytes: Arc::clone(&intra),
            };
            let _ = exec.execute(msg.clone(), &pool).unwrap();
            intra.load(Ordering::Relaxed)
        };
        let with = run(PartitionMode::Partitioned);
        let without = run(PartitionMode::None);
        assert!(
            with * 2 < without,
            "partitioning should cut thread-input bytes: with={with} without={without}"
        );
    }

    #[test]
    fn obfuscation_round_trip_across_linear_stages() {
        // Two linear stages with a pass-through non-linear stage between:
        // the second linear stage must see the *original* positions.
        let (kp, pool) = setup(8);
        let mut rng = StdRng::seed_from_u64(9);
        let model = zoo::mlp("m", &[3, 3, 2], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 10);
        let input = pp_tensor::Tensor::from_flat(vec![1.0, 2.0, 3.0]);
        let got = run_stages(&kp, &scaled, &input, PartitionMode::Partitioned, &pool);
        let want = scaled.forward_scaled(&scaled.scale_input(&input)).unwrap();
        assert_eq!(got, want.data().iter().map(|&v| v as i128).collect::<Vec<_>>());
    }

    #[test]
    fn middle_rounds_are_obfuscated_and_last_is_not() {
        let (kp, pool) = setup(10);
        let mut rng = StdRng::seed_from_u64(11);
        let model = zoo::mlp("m", &[3, 4, 2], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 10);
        let stages = encapsulate(&scaled).unwrap();
        let perms = Arc::new(PermStore::default());
        let intra = Arc::new(AtomicU64::new(0));

        let enc = EncryptStage { pk: kp.public(), seed: 1, rand_pool: None };
        let scaled_in = scaled.scale_input(&pp_tensor::Tensor::from_flat(vec![0.1, 0.2, 0.3]));
        let msg0 = enc.encrypt(
            PlainTensorMsg {
                seq: 0,
                shape: vec![3],
                values: scaled_in.data().iter().map(|&v| v as i128).collect(),
            },
            &pool,
        );
        assert!(!msg0.obfuscated);

        let first = LinearStage {
            pk: kp.public(),
            stage: stages[0].clone(),
            linear_idx: 0,
            is_first: true,
            is_last: false,
            perms: Arc::clone(&perms),
            mode: PartitionMode::Partitioned,
            seed: 2,
            intra_bytes: Arc::clone(&intra),
        };
        let msg1 = first.execute(msg0, &pool).unwrap();
        assert!(msg1.obfuscated, "intermediate round must be obfuscated (Step 1.4)");

        let nl = NonLinearStage {
            keypair: kp.clone(),
            stage: stages[1].clone(),
            factor: scaled.factor(),
            is_last: false,
            seed: 3,
        };
        let msg2 = nl.execute(msg1, &pool).unwrap();
        assert!(msg2.obfuscated, "re-encrypted tensor keeps permuted order");

        let last = LinearStage {
            pk: kp.public(),
            stage: stages[2].clone(),
            linear_idx: 1,
            is_first: false,
            is_last: true,
            perms,
            mode: PartitionMode::Partitioned,
            seed: 4,
            intra_bytes: intra,
        };
        let msg3 = last.execute(msg2, &pool).unwrap();
        assert!(!msg3.obfuscated, "last round sends without obfuscation (Step 3.4)");
    }

    #[test]
    fn fresh_permutation_per_request() {
        let (kp, pool) = setup(12);
        let stage = MergedStage {
            role: StageRole::Linear,
            ops: vec![ScaledOp::ScaleMul { alpha: 1 }],
            input_shape: Shape::vector(8),
            output_shape: Shape::vector(8),
        };
        let perms = Arc::new(PermStore::default());
        let exec = LinearStage {
            pk: kp.public(),
            stage,
            linear_idx: 0,
            is_first: true,
            is_last: false,
            perms: Arc::clone(&perms),
            mode: PartitionMode::Partitioned,
            seed: 5,
            intra_bytes: Arc::new(AtomicU64::new(0)),
        };
        let mut rng = StdRng::seed_from_u64(13);
        let make = |seq: u64, rng: &mut StdRng| EncTensorMsg {
            seq,
            shape: vec![8],
            obfuscated: false,
            cts: (0..8)
                .map(|i| kp.public().encrypt_i64(i, rng).to_bytes())
                .collect(),
        };
        let _ = exec.execute(make(0, &mut rng), &pool).unwrap();
        let _ = exec.execute(make(1, &mut rng), &pool).unwrap();
        let p0 = perms.take(0, 0).unwrap();
        let p1 = perms.take(1, 0).unwrap();
        assert_ne!(
            p0.forward_indices(),
            p1.forward_indices(),
            "permutations must differ across requests/rounds (Sec. III-C)"
        );
    }

    #[test]
    fn missing_permutation_is_an_error_not_a_panic() {
        let (kp, pool) = setup(14);
        let stage = MergedStage {
            role: StageRole::Linear,
            ops: vec![ScaledOp::ScaleMul { alpha: 1 }],
            input_shape: Shape::vector(4),
            output_shape: Shape::vector(4),
        };
        // is_first == false but nothing was stored for (seq, linear_idx-1).
        let exec = LinearStage {
            pk: kp.public(),
            stage,
            linear_idx: 1,
            is_first: false,
            is_last: false,
            perms: Arc::new(PermStore::default()),
            mode: PartitionMode::Partitioned,
            seed: 5,
            intra_bytes: Arc::new(AtomicU64::new(0)),
        };
        let mut rng = StdRng::seed_from_u64(15);
        let msg = EncTensorMsg {
            seq: 9,
            shape: vec![4],
            obfuscated: true,
            cts: (0..4).map(|i| kp.public().encrypt_i64(i, &mut rng).to_bytes()).collect(),
        };
        let err = exec.execute(msg, &pool).unwrap_err();
        assert!(
            matches!(&err, StreamError::Stage(s) if s.contains("permutation")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn final_stage_wrapper_rejects_obfuscated_input() {
        use pp_stream_runtime::StageMetrics;
        let (kp, pool) = setup(16);
        let stage = MergedStage {
            role: StageRole::NonLinear,
            ops: vec![ScaledOp::ReLU { rescale: 1 }],
            input_shape: Shape::vector(2),
            output_shape: Shape::vector(2),
        };
        let nl = Arc::new(NonLinearStage {
            keypair: kp.clone(),
            stage,
            factor: 10,
            is_last: true,
            seed: 3,
        });
        let mut rng = StdRng::seed_from_u64(17);
        let msg = EncTensorMsg {
            seq: 0,
            shape: vec![2],
            obfuscated: true,
            cts: (0..2).map(|i| kp.public().encrypt_i64(i, &mut rng).to_bytes()).collect(),
        };
        let metrics = StageMetrics::default();
        let mut cx = StageContext::new(&pool, &metrics);
        let err = FinalNonLinearStage(nl).process(msg, &mut cx).unwrap_err();
        assert!(matches!(&err, StreamError::Stage(s) if s.contains("obfuscated")), "{err}");
    }
}
