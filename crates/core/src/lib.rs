//! # pp-stream
//!
//! The paper's primary contribution: a distributed stream-processing
//! system for high-performance privacy-preserving neural-network
//! inference (ICDE 2024).
//!
//! PP-Stream runs collaborative inference between a **model provider**
//! (holds the weights, executes linear layers under Paillier homomorphic
//! encryption) and a **data provider** (holds the inputs, executes
//! non-linear layers in the clear on permutation-obfuscated tensors).
//! The crate assembles every substrate in this workspace:
//!
//! * hybrid privacy preservation — [`pp_paillier`] for linear operations
//!   (paper Sec. III-B), [`pp_obfuscate`] for non-linear operations
//!   (Sec. III-C), composed in the three-round workflow of Fig. 3
//!   ([`protocol`]);
//! * **operation encapsulation** ([`encapsulate`]) — merging adjacent
//!   primitive layers of the same type into alternating pipelined stages
//!   (Sec. IV-B);
//! * **load-balanced resource allocation** — offline stage profiling plus
//!   the [`pp_allocate`] branch-and-bound ILP (Sec. IV-C);
//! * **tensor partitioning** ([`protocol`]) — sending each stage thread
//!   only the input sub-tensor its output range needs (Sec. IV-D);
//! * the pipelined execution itself on [`pp_stream_runtime`].
//!
//! ## Quick start
//!
//! ```
//! use pp_nn::{zoo, ScaledModel};
//! use pp_stream::{PpStream, PpStreamConfig};
//! use pp_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let model = zoo::mlp("demo", &[4, 6, 2], &mut rng).unwrap();
//! let scaled = ScaledModel::from_model(&model, 100);
//!
//! let config = PpStreamConfig::small_test(128);
//! let session = PpStream::new(scaled, config).unwrap();
//! let input = Tensor::from_flat(vec![0.5, -0.5, 0.25, 0.0]);
//! let (classes, report) = session.classify_stream(&[input.clone()]).unwrap();
//! assert_eq!(classes[0], model.classify(&input).unwrap());
//! assert!(report.mean_latency > std::time::Duration::ZERO);
//! ```

pub mod baseline;
pub mod encapsulate;
mod encctx;
pub mod evloop;
pub mod governor;
pub mod journal;
pub mod messages;
pub mod net;
pub mod packed;
pub mod plan;
pub mod protocol;
mod session;
pub mod simulate;

pub use encapsulate::{encapsulate, MergedStage, StageRole};
pub use encctx::EncCtx;
pub use governor::{Governor, GovernorConfig};
pub use journal::{FsyncPolicy, Journal, JournalConfig, JournalRecord};
pub use messages::{ItemErrorKind, RejectCode};
pub use net::{
    ItemOutcome, ModelProvider, NetConfig, NetworkedSession, ServeOptions, ServeReport,
    ServerHandle, TransportReport,
};
pub use packed::{required_budget, PackedEncCtx};
#[cfg(feature = "fault-injection")]
pub use pp_stream_runtime::fault::FaultPlan;
pub use plan::{AllocationPlan, PlanSource};
pub use session::{PpStream, PpStreamConfig, RunReport};

/// Errors from PP-Stream session construction or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The model violates the protocol's structural assumptions.
    Model(String),
    /// Resource allocation failed.
    Allocate(String),
    /// A pipeline or wire error.
    Runtime(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(s) => write!(f, "model error: {s}"),
            CoreError::Allocate(s) => write!(f, "allocation error: {s}"),
            CoreError::Runtime(s) => write!(f, "runtime error: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<pp_allocate::AllocateError> for CoreError {
    fn from(e: pp_allocate::AllocateError) -> Self {
        CoreError::Allocate(e.to_string())
    }
}

impl From<pp_stream_runtime::StreamError> for CoreError {
    fn from(e: pp_stream_runtime::StreamError) -> Self {
        CoreError::Runtime(e.to_string())
    }
}

impl From<pp_nn::NnError> for CoreError {
    fn from(e: pp_nn::NnError) -> Self {
        CoreError::Model(e.to_string())
    }
}

pub use encapsulate::encapsulate_with;
