//! Deployment simulator: predicts multi-server / multi-core latency from
//! single-thread measurements.
//!
//! The paper's testbed is nine 24-core Xeons; this reproduction runs in a
//! container whose core count cannot express that parallelism in
//! wall-clock time. Following DESIGN.md §3, the latency experiments
//! (Exp#2–4) therefore combine
//!
//! * **measured** single-thread per-stage work `W_i` (from
//!   [`crate::PpStream`]'s offline profiling — exact on any machine), and
//! * an **analytic deployment model** of how that work spreads over
//!   `y_i` threads and the network.
//!
//! Per-stage latency with `y` threads:
//!
//! ```text
//!   T_i(y) = dispatch_bytes_i(y) / S  +  compute_i / y
//! ```
//!
//! where `S` is the measured serialization throughput and
//! `dispatch_bytes_i(y)` is the thread-input traffic of Sec. IV-D,
//! computed exactly from stage geometry:
//!
//! * no partitioning — one task per output element, whole input each:
//!   `n_out · input_bytes` (serial at the dispatcher, independent of `y`);
//! * output partitioning (dense) — whole input per thread: `y · input_bytes`;
//! * input+output partitioning (conv) — per-thread receptive-field
//!   sub-tensors (union computed via `conv_input_indices_for_range`);
//! * element-wise ops — each thread only its slice: `input_bytes`.
//!
//! Request latency sums the stage latencies plus one network hop per
//! link; steady-state pipeline throughput is limited by the slowest
//! stage (`max_i T_i(y_i)`), so a stream of `R` requests completes in
//! `latency + (R−1)·bottleneck`.

use crate::encapsulate::{MergedStage, StageRole};
use crate::protocol::PartitionMode;
use pp_nn::scaling::ScaledOp;
use pp_tensor::ops::conv_input_indices_for_range;
use pp_tensor::Shape;
use std::time::Duration;

/// Network characteristics between servers (the paper's testbed: 10 Gbps
/// Ethernet).
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Per-message round-trip overhead in seconds.
    pub rtt: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // 10 Gbps, 100 µs LAN RTT.
        NetworkModel { bandwidth: 10e9 / 8.0, rtt: 100e-6 }
    }
}

/// Per-stage inputs to the simulator, all obtained from one single-thread
/// profiled run.
#[derive(Clone, Debug)]
pub struct StageProfile {
    /// Measured single-thread wall time of the stage (seconds).
    pub wall_1thread: f64,
    /// Thread-input bytes observed at one thread.
    pub dispatch_bytes_1thread: u64,
    /// Bytes the stage emitted onto its outgoing link.
    pub link_bytes: u64,
}

/// Simulated outcome for one deployment.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// End-to-end latency of a single request.
    pub latency: Duration,
    /// Slowest-stage service time (pipeline bottleneck).
    pub bottleneck: Duration,
    /// Per-stage service times.
    pub stage_times: Vec<Duration>,
}

impl SimReport {
    /// Makespan of a stream of `requests` back-to-back requests.
    pub fn makespan(&self, requests: usize) -> Duration {
        if requests == 0 {
            return Duration::ZERO;
        }
        self.latency + self.bottleneck * (requests as u32 - 1)
    }
}

/// Ciphertext size in bytes for a given key size (elements of `Z_{n²}`).
pub fn ciphertext_bytes(key_bits: usize) -> u64 {
    (2 * key_bits / 8) as u64
}

/// Dispatch traffic of one linear op at `y` threads (Sec. IV-D).
fn op_dispatch_bytes(
    op: &ScaledOp,
    input_shape: &Shape,
    mode: PartitionMode,
    y: usize,
    ct_bytes: u64,
) -> u64 {
    let input_bytes = input_shape.len() as u64 * ct_bytes;
    match op {
        ScaledOp::Dense { weights, .. } => {
            let n_out = weights.shape().dims()[0] as u64;
            match mode {
                PartitionMode::None => n_out * input_bytes,
                PartitionMode::Partitioned => (y as u64).min(n_out) * input_bytes,
            }
        }
        ScaledOp::Conv2d { spec, .. } => {
            let out_shape = spec.output_shape(input_shape).expect("validated");
            let n_out = out_shape.len();
            match mode {
                PartitionMode::None => n_out as u64 * input_bytes,
                PartitionMode::Partitioned => {
                    let parts = y.min(n_out).max(1);
                    let chunk = n_out.div_ceil(parts);
                    let mut total = 0u64;
                    let mut start = 0;
                    while start < n_out {
                        let end = (start + chunk).min(n_out);
                        let needed =
                            conv_input_indices_for_range(input_shape, spec, start..end)
                                .expect("validated");
                        total += needed.len() as u64 * ct_bytes;
                        start = end;
                    }
                    total
                }
            }
        }
        ScaledOp::SumPool { window, stride } => {
            let out_shape =
                pp_tensor::ops::pool_output_shape(input_shape, *window, *stride).expect("validated");
            let n_out = out_shape.len();
            match mode {
                PartitionMode::None => n_out as u64 * input_bytes,
                PartitionMode::Partitioned => {
                    let parts = y.min(n_out).max(1);
                    let chunk = n_out.div_ceil(parts);
                    let mut total = 0u64;
                    let mut start = 0;
                    while start < n_out {
                        let end = (start + chunk).min(n_out);
                        let needed = pp_tensor::ops::pool_input_indices_for_range(
                            input_shape,
                            *window,
                            *stride,
                            start..end,
                        )
                        .expect("validated");
                        total += needed.len() as u64 * ct_bytes;
                        start = end;
                    }
                    total
                }
            }
        }
        // Element-wise / metadata ops: each thread only its slice.
        _ => input_bytes,
    }
}

/// Dispatch traffic of a whole merged stage at `y` threads.
pub fn stage_dispatch_bytes(
    stage: &MergedStage,
    mode: PartitionMode,
    y: usize,
    ct_bytes: u64,
) -> u64 {
    if stage.role != StageRole::Linear {
        // Non-linear stages decrypt/encrypt element-wise: slice-only.
        return stage.input_shape.len() as u64 * ct_bytes;
    }
    let mut shape = stage.input_shape.clone();
    let mut total = 0;
    for op in &stage.ops {
        total += op_dispatch_bytes(op, &shape, mode, y, ct_bytes);
        shape = crate::encapsulate::op_output_shape(op, &shape).expect("validated");
    }
    total
}

/// Simulates a deployment.
///
/// * `profiles` — one entry per pipeline stage (encrypt + merged stages),
///   from a 1-thread run in the *same* partition mode as `mode`.
/// * `stages` — the merged stages (for geometry); entry 0 of `profiles`
///   is the encrypt stage, which has no `MergedStage`.
/// * `threads` — `y_i` per pipeline stage (same length as `profiles`).
/// * `ser_throughput` — measured serialization throughput (bytes/sec).
pub fn simulate(
    profiles: &[StageProfile],
    stages: &[MergedStage],
    threads: &[usize],
    mode: PartitionMode,
    ct_bytes: u64,
    ser_throughput: f64,
    net: &NetworkModel,
) -> SimReport {
    assert_eq!(profiles.len(), stages.len() + 1, "encrypt stage + merged stages");
    assert_eq!(profiles.len(), threads.len());
    let mut stage_times = Vec::with_capacity(profiles.len());
    for (i, p) in profiles.iter().enumerate() {
        let y = threads[i].max(1) as f64;
        // Split the measured single-thread time into dispatch transfer
        // and parallelizable compute.
        let transfer_1 = p.dispatch_bytes_1thread as f64 / ser_throughput;
        let compute = (p.wall_1thread - transfer_1).max(p.wall_1thread * 0.05);
        let dispatch_y = if i == 0 {
            // Encrypt stage is element-wise.
            p.dispatch_bytes_1thread
        } else {
            stage_dispatch_bytes(&stages[i - 1], mode, threads[i], ct_bytes)
        };
        let t = dispatch_y as f64 / ser_throughput + compute / y;
        stage_times.push(Duration::from_secs_f64(t));
    }
    // Network: one hop after every stage (stage i → stage i+1 / sink).
    let net_time: f64 = profiles
        .iter()
        .map(|p| p.link_bytes as f64 / net.bandwidth + net.rtt)
        .sum();
    let latency = stage_times.iter().sum::<Duration>() + Duration::from_secs_f64(net_time);
    let bottleneck = stage_times
        .iter()
        .max()
        .copied()
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));
    SimReport { latency, bottleneck, stage_times }
}

/// Measures serialization throughput (bytes/sec) on this machine by
/// round-tripping ciphertext-sized buffers.
pub fn measure_serialization_throughput(ct_bytes: u64) -> f64 {
    use pp_bigint::BigUint;
    let sample = BigUint::from_bytes_be(&vec![0xA5u8; ct_bytes as usize]);
    let reps = 2000;
    let t0 = std::time::Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        let bytes = sample.to_bytes_be();
        sink ^= bytes.len() as u64;
        let back = BigUint::from_bytes_be(&bytes);
        sink ^= back.bit_len() as u64;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (reps as u64 * 2 * ct_bytes) as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulate::encapsulate;
    use pp_nn::{zoo, ScaledModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stages_for(model: pp_nn::Model) -> (ScaledModel, Vec<MergedStage>) {
        let scaled = ScaledModel::from_model(&model, 100);
        let stages = encapsulate(&scaled).unwrap();
        (scaled, stages)
    }

    fn uniform_profiles(n: usize, wall: f64, bytes: u64) -> Vec<StageProfile> {
        (0..n)
            .map(|_| StageProfile {
                wall_1thread: wall,
                dispatch_bytes_1thread: bytes,
                link_bytes: bytes,
            })
            .collect()
    }

    #[test]
    fn more_threads_reduce_latency() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, stages) = stages_for(zoo::mlp("m", &[8, 16, 4], &mut rng).unwrap());
        let profiles = uniform_profiles(stages.len() + 1, 0.1, 10_000);
        let ct = ciphertext_bytes(256);
        let s = 1e9;
        let net = NetworkModel::default();
        let t1 = vec![1; profiles.len()];
        let t4 = vec![4; profiles.len()];
        let r1 = simulate(&profiles, &stages, &t1, PartitionMode::Partitioned, ct, s, &net);
        let r4 = simulate(&profiles, &stages, &t4, PartitionMode::Partitioned, ct, s, &net);
        assert!(r4.latency < r1.latency, "{:?} vs {:?}", r4.latency, r1.latency);
        assert!(r4.bottleneck < r1.bottleneck);
    }

    #[test]
    fn diminishing_returns_with_cores() {
        // The Exp#3 observation: 1→4 threads helps more than 4→16.
        let mut rng = StdRng::seed_from_u64(2);
        let (_, stages) = stages_for(zoo::mlp("m", &[8, 16, 4], &mut rng).unwrap());
        let profiles = uniform_profiles(stages.len() + 1, 0.1, 100_000);
        let ct = ciphertext_bytes(256);
        let net = NetworkModel::default();
        let lat = |y: usize| {
            simulate(
                &profiles,
                &stages,
                &vec![y; profiles.len()],
                PartitionMode::Partitioned,
                ct,
                1e9,
                &net,
            )
            .latency
            .as_secs_f64()
        };
        let gain_low = lat(1) - lat(4);
        let gain_high = lat(4) - lat(16);
        assert!(gain_low > gain_high, "low {gain_low} high {gain_high}");
    }

    #[test]
    fn partitioning_gain_grows_with_threads() {
        // The Exp#4 observation: the no-partition dispatcher is a serial
        // bottleneck, so partitioning gains grow as threads increase.
        let mut rng = StdRng::seed_from_u64(3);
        let (_, stages) = stages_for(zoo::mnist2_1conv2fc(&mut rng).unwrap());
        let profiles = uniform_profiles(stages.len() + 1, 0.5, 50_000);
        let ct = ciphertext_bytes(256);
        let net = NetworkModel::default();
        let lat = |mode: PartitionMode, y: usize| {
            simulate(&profiles, &stages, &vec![y; profiles.len()], mode, ct, 1e8, &net)
                .latency
                .as_secs_f64()
        };
        let gain_at = |y: usize| {
            (lat(PartitionMode::None, y) - lat(PartitionMode::Partitioned, y))
                / lat(PartitionMode::None, y)
        };
        assert!(gain_at(16) > gain_at(2), "2: {} 16: {}", gain_at(2), gain_at(16));
    }

    #[test]
    fn dispatch_bytes_match_partitioning_semantics() {
        let mut rng = StdRng::seed_from_u64(4);
        let (_, stages) = stages_for(zoo::small_convnet("c", (1, 6, 6), 2, 3, &mut rng).unwrap());
        let conv_stage = &stages[0];
        let ct = 64;
        let none = stage_dispatch_bytes(conv_stage, PartitionMode::None, 4, ct);
        let part = stage_dispatch_bytes(conv_stage, PartitionMode::Partitioned, 4, ct);
        assert!(part < none, "partitioned {part} must be below none {none}");
        // No-partition traffic = n_out × input bytes.
        let n_out = conv_stage.output_shape.len() as u64;
        let input = conv_stage.input_shape.len() as u64 * ct;
        assert_eq!(none, n_out * input);
    }

    #[test]
    fn makespan_pipelines_requests() {
        let r = SimReport {
            latency: Duration::from_millis(100),
            bottleneck: Duration::from_millis(20),
            stage_times: vec![],
        };
        assert_eq!(r.makespan(1), Duration::from_millis(100));
        assert_eq!(r.makespan(6), Duration::from_millis(200));
        assert_eq!(r.makespan(0), Duration::ZERO);
    }

    #[test]
    fn serialization_throughput_positive() {
        let s = measure_serialization_throughput(64);
        assert!(s > 1e5, "throughput {s} too low");
    }
}
