//! Homomorphic arithmetic back-end for the shared layer kernels.

use pp_paillier::{Ciphertext, MontInputs, PublicKey};
use pp_tensor::{DotRow, LinearAlgebra};

/// [`LinearAlgebra`] over Paillier ciphertexts: the model provider's view
/// of a linear layer. `weight × element` is `E(m)^w mod n²` and
/// `a + b` is `E(m₁)·E(m₂) mod n²` (paper Eqs. 1–3); bias constants enter
/// via deterministic encryption (they are the model provider's own data).
#[derive(Clone, Copy)]
pub struct EncCtx<'a> {
    /// The data provider's public key.
    pub pk: &'a PublicKey,
}

impl LinearAlgebra for EncCtx<'_> {
    type Elem = Ciphertext;
    type Weight = i64;

    fn mul(&self, w: i64, x: &Ciphertext) -> Ciphertext {
        self.pk.mul_scalar_i64(x, w)
    }

    fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.pk.add(a, b)
    }

    fn constant(&self, w: i64) -> Ciphertext {
        self.pk.encrypt_constant_i64(w)
    }

    /// Fused dot product via Straus multi-exponentiation — one shared
    /// squaring ladder across every term and a single `modinv` for the
    /// negative-weight product, bit-identical to the mul/add fold.
    fn dot(&self, elems: &[Ciphertext], terms: &[(usize, i64)], bias: i64) -> Ciphertext {
        MontInputs::new(self.pk, elems).dot_i64(terms, bias)
    }

    /// A layer's worth of fused dot products sharing one set of
    /// Montgomery conversions: each input ciphertext enters the residue
    /// domain once, no matter how many output neurons read it.
    fn dot_rows(&self, elems: &[Ciphertext], rows: &[DotRow<i64>]) -> Vec<Ciphertext> {
        let inputs = MontInputs::new(self.pk, elems);
        rows.iter().map(|r| inputs.dot_i64(&r.terms, r.bias)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_paillier::Keypair;
    use pp_tensor::ops::{conv2d, fully_connected, Conv2dSpec};
    use pp_tensor::{PlainI128, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encrypted_fc_matches_plain_scaled() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = Keypair::generate(128, &mut rng);
        let pk = kp.public();
        let ctx = EncCtx { pk: &pk };

        let input_plain: Vec<i64> = vec![10, -20, 30];
        let weights = Tensor::from_vec(vec![2, 3], vec![2i64, -1, 0, 3, 3, 3]).unwrap();
        let bias = [5i64, -7];

        let enc_input = Tensor::from_vec(
            vec![3],
            input_plain.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect(),
        )
        .unwrap();
        let enc_out = fully_connected(&ctx, &enc_input, &weights, &bias).unwrap();

        let plain_in = Tensor::from_vec(vec![3], input_plain.iter().map(|&v| v as i128).collect()).unwrap();
        let plain_out = fully_connected(&PlainI128, &plain_in, &weights, &bias).unwrap();

        for (c, &want) in enc_out.data().iter().zip(plain_out.data()) {
            assert_eq!(kp.private().decrypt_i128(c), want);
        }
    }

    #[test]
    fn encrypted_conv_matches_plain_scaled() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = Keypair::generate(128, &mut rng);
        let pk = kp.public();
        let ctx = EncCtx { pk: &pk };

        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 };
        let vals: Vec<i64> = vec![1, -2, 3, 4, 5, -6, 7, 8, 9];
        let enc_input = Tensor::from_vec(
            vec![1, 3, 3],
            vals.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect(),
        )
        .unwrap();
        let weights = Tensor::from_vec(vec![1, 1, 2, 2], vec![1i64, 2, -1, 0]).unwrap();
        let enc_out = conv2d(&ctx, &enc_input, &weights, &[100], &spec).unwrap();

        let plain_in =
            Tensor::from_vec(vec![1, 3, 3], vals.iter().map(|&v| v as i128).collect()).unwrap();
        let plain_out = conv2d(&PlainI128, &plain_in, &weights, &[100], &spec).unwrap();
        for (c, &want) in enc_out.data().iter().zip(plain_out.data()) {
            assert_eq!(kp.private().decrypt_i128(c), want);
        }
    }

    #[test]
    fn fused_dot_bit_identical_to_mul_add_fold() {
        // The override must produce the exact residues of the default
        // mul/add fold, not just values that decrypt equally — the
        // deployment bit-for-bit soaks depend on it.
        let mut rng = StdRng::seed_from_u64(3);
        let kp = Keypair::generate(128, &mut rng);
        let pk = kp.public();
        let ctx = EncCtx { pk: &pk };

        let ms = [4i64, 0, -9, 17, -1];
        let cts: Vec<Ciphertext> = ms.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
        let terms: Vec<(usize, i64)> = vec![(0, 3), (1, -5), (2, 0), (3, -2), (4, 7)];
        let bias = -11i64;

        let fused = ctx.dot(&cts, &terms, bias);
        let mut naive = ctx.constant(bias);
        for &(i, w) in &terms {
            naive = ctx.add(&naive, &ctx.mul(w, &cts[i]));
        }
        assert_eq!(fused.raw(), naive.raw());

        let rows = vec![
            pp_tensor::DotRow { bias, terms: terms.clone() },
            pp_tensor::DotRow { bias: 0, terms: vec![(2, -4)] },
        ];
        let batched = ctx.dot_rows(&cts, &rows);
        assert_eq!(batched[0].raw(), naive.raw());
        assert_eq!(batched[1].raw(), ctx.mul(-4, &cts[2]).raw());
    }
}
