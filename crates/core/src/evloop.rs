//! Readiness-driven event loop primitives for the serving path
//! (DESIGN.md §9): a minimal epoll wrapper, an eventfd waker, and an
//! incremental frame codec for nonblocking sockets.
//!
//! The repository vendors no FFI crates, so the three kernel interfaces
//! this module needs — `epoll_create1`/`epoll_ctl`/`epoll_pwait`,
//! `eventfd2`, and raw `read`/`write` on the eventfd — are invoked as
//! raw syscalls via inline assembly, gated to the platforms whose
//! syscall ABI is stable and documented (Linux on x86_64 and aarch64).
//! Everywhere else [`supported`] returns `false` and
//! `ModelProvider::serve_forever` falls back to the legacy threaded
//! supervisor, so the crate still builds and serves on any platform.
//!
//! The codec half ([`FrameReader`]/[`WriteBuf`]) speaks exactly the
//! blocking transport's wire format
//! (`seq: u64 LE | deadline_ms: u64 LE | len: u32 LE | payload`, see
//! `pp_stream_runtime::tcp`): same `NO_DEADLINE` sentinel, same
//! governor-derived frame ceiling surfacing as a
//! `Transport { kind: FrameLimit }` error before any payload is
//! buffered, same per-direction strictly-increasing transport seqs,
//! same optional receive-side monotonicity validation — so a client
//! speaking to the event loop cannot tell it apart from a thread
//! holding a `TcpFrameSender`.

use pp_stream_runtime::link::{Frame, SeqValidator, NO_DEADLINE};
use pp_stream_runtime::{tcp, StreamError, TransportErrorKind};

/// Whether this build can run the readiness event loop.
pub const fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

// ---------------------------------------------------------------------------
// Raw syscalls (Linux x86_64 / aarch64)
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd};
    use std::sync::Arc;
    use std::time::Duration;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: usize, a: [usize; 6]) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a[0], in("rsi") a[1], in("rdx") a[2],
            in("r10") a[3], in("r8") a[4], in("r9") a[5],
            lateout("rcx") _, lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: usize, a: [usize; 6]) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a[0] as isize => ret,
            in("x1") a[1], in("x2") a[2], in("x3") a[3],
            in("x4") a[4], in("x5") a[5], in("x8") n,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EFD_CLOEXEC: usize = 0o2000000;
    const EFD_NONBLOCK: usize = 0o4000;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`: packed on x86_64, natural alignment on
    /// every other architecture — the kernel ABI differs exactly there.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// One epoll instance (level-triggered).
    pub struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = check(unsafe {
                syscall6(nr::EPOLL_CREATE1, [EPOLL_CLOEXEC, 0, 0, 0, 0, 0])
            })?;
            // SAFETY: epoll_create1 returned a fresh fd we own.
            Ok(Poller { epfd: unsafe { OwnedFd::from_raw_fd(fd as i32) } })
        }

        fn ctl(&self, op: usize, fd: i32, events: u32, token: u64) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            let mut ev = EpollEvent { events, data: token };
            let evp = if op == EPOLL_CTL_DEL { 0 } else { &mut ev as *mut EpollEvent as usize };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    [self.epfd.as_raw_fd() as usize, op, fd as usize, evp, 0, 0],
                )
            })
            .map(|_| ())
        }

        pub fn add(&self, fd: i32, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::mask(writable), token)
        }

        pub fn modify(&self, fd: i32, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::mask(writable), token)
        }

        pub fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Read interest is always on (every connection is waiting for
        /// its peer's next frame); write interest only while a write
        /// buffer is non-empty.
        fn mask(writable: bool) -> u32 {
            let mut m = EPOLLIN | EPOLLRDHUP;
            if writable {
                m |= EPOLLOUT;
            }
            m
        }

        /// Blocks until readiness or `timeout` (`None` = indefinitely).
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            out.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            let timeout_ms: isize = match timeout {
                // Round up so a 100µs timer doesn't busy-spin at 0ms.
                Some(t) => t.as_millis().min(i32::MAX as u128) as isize + 1,
                None => -1,
            };
            let n = loop {
                let ret = unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        [
                            self.epfd.as_raw_fd() as usize,
                            events.as_mut_ptr() as usize,
                            events.len(),
                            timeout_ms as usize,
                            0, // no sigmask
                            8, // sigsetsize
                        ],
                    )
                };
                match check(ret) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in events.iter().take(n) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    /// One readiness notification.
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        pub token: u64,
        pub readable: bool,
        pub writable: bool,
    }

    /// Cross-thread wakeup for a [`Poller`]: an eventfd registered like
    /// any other fd. Cloneable and cheap to signal.
    #[derive(Clone)]
    pub struct Waker {
        fd: Arc<OwnedFd>,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let fd = check(unsafe {
                syscall6(nr::EVENTFD2, [0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0])
            })?;
            // SAFETY: eventfd2 returned a fresh fd we own.
            Ok(Waker { fd: Arc::new(unsafe { OwnedFd::from_raw_fd(fd as i32) }) })
        }

        pub fn raw_fd(&self) -> i32 {
            use std::os::fd::AsRawFd;
            self.fd.as_raw_fd()
        }

        /// Signals the poller. Never blocks: a counter about to
        /// overflow (EAGAIN) already guarantees a pending wakeup.
        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            let _ = unsafe {
                syscall6(
                    nr::WRITE,
                    [self.raw_fd() as usize, one.as_ptr() as usize, 8, 0, 0, 0],
                )
            };
        }

        /// Clears the pending-wakeup counter (called by the woken
        /// thread; the eventfd is level-triggered until read).
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            let _ = unsafe {
                syscall6(
                    nr::READ,
                    [self.raw_fd() as usize, buf.as_mut_ptr() as usize, 8, 0, 0, 0],
                )
            };
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    //! Stub for platforms without the raw-syscall shim: [`supported`]
    //! is `false` there, `serve_forever` takes the threaded path, and
    //! none of these are ever constructed — they exist so `net.rs`
    //! needs no `cfg` forest.
    use std::io;
    use std::time::Duration;

    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "event loop unsupported here"))
        }
        pub fn add(&self, _fd: i32, _token: u64, _writable: bool) -> io::Result<()> {
            unreachable!("stub poller is never constructed")
        }
        pub fn modify(&self, _fd: i32, _token: u64, _writable: bool) -> io::Result<()> {
            unreachable!("stub poller is never constructed")
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unreachable!("stub poller is never constructed")
        }
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<()> {
            unreachable!("stub poller is never constructed")
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        pub token: u64,
        pub readable: bool,
        pub writable: bool,
    }

    /// No-op waker so `ServerHandle` can hold wakers unconditionally.
    #[derive(Clone)]
    pub struct Waker {}

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            Ok(Waker {})
        }
        pub fn raw_fd(&self) -> i32 {
            -1
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }
}

pub use sys::{Event, Poller, Waker};

// ---------------------------------------------------------------------------
// Incremental frame codec for nonblocking sockets
// ---------------------------------------------------------------------------

/// Wire header size: `seq: u64 | deadline_ms: u64 | len: u32`.
const HEADER: usize = 20;

/// Reassembles frames from arbitrarily-chunked nonblocking reads.
///
/// The frame ceiling starts at the process-wide `PP_MAX_FRAME` default
/// and is tightened by the serve path: pre-handshake connections get the
/// governor's small pre-auth cap, then the negotiated ceiling once the
/// handshake pins key width and topology (see `crate::governor`). A
/// longer prefix is a `Transport { kind: FrameLimit }` breach, rejected
/// before the payload would be buffered.
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
    validator: Option<SeqValidator>,
}

impl FrameReader {
    pub fn new(validate_seq: bool) -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            max_frame: tcp::env_max_frame(),
            validator: validate_seq.then(SeqValidator::new),
        }
    }

    /// Tightens (or relaxes) the frame ceiling; 0 restores the env
    /// default. Mirrors `TcpFrameReceiver::set_max_frame`.
    pub fn set_max_frame(&mut self, max_frame: usize) {
        self.max_frame = if max_frame == 0 { tcp::env_max_frame() } else { max_frame };
    }

    /// Bytes currently buffered (read but not yet consumed as frames) —
    /// this connection's decode footprint for governor accounting.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Appends freshly-read bytes.
    pub fn extend_from(&mut self, data: &[u8]) {
        // Reclaim consumed prefix before growing, so a long-lived idle
        // session holds no more than one frame of buffer.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Pops the next complete frame; `Ok(None)` means more bytes are
    /// needed. Errors mirror the blocking receiver: oversize length
    /// prefix → `Transport { kind: FrameLimit }`, seq regression →
    /// `Transport { kind: Seq }`.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, StreamError> {
        let avail = self.buf.len() - self.start;
        if avail < HEADER {
            return Ok(None);
        }
        let h = &self.buf[self.start..self.start + HEADER];
        let seq = u64::from_le_bytes(h[0..8].try_into().expect("8 bytes"));
        let deadline_raw = u64::from_le_bytes(h[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(h[16..20].try_into().expect("4 bytes")) as usize;
        if len > self.max_frame {
            return Err(StreamError::transport(
                TransportErrorKind::FrameLimit,
                format!("frame length prefix {len} exceeds the {}-byte frame ceiling", self.max_frame),
            ));
        }
        if avail < HEADER + len {
            return Ok(None);
        }
        let payload =
            bytes::Bytes::from(self.buf[self.start + HEADER..self.start + HEADER + len].to_vec());
        self.start += HEADER + len;
        if let Some(v) = &mut self.validator {
            v.check(seq)?;
        }
        let deadline_ms = (deadline_raw != NO_DEADLINE).then_some(deadline_raw);
        Ok(Some(Frame { seq, deadline_ms, payload }))
    }

    /// Whether unconsumed bytes remain — an EOF here is a mid-frame
    /// disconnect, not a clean shutdown.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }
}

/// Outgoing frame buffer: encodes frames with this direction's
/// strictly-increasing transport seq (same numbering as
/// `TcpFrameSender::send_payload`, starting at 0) and drains them
/// through nonblocking writes, tolerating partial progress.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
    next_seq: u64,
}

impl WriteBuf {
    pub fn new() -> Self {
        WriteBuf::default()
    }

    /// Encodes `payload` as the next frame (no deadline — server
    /// replies never carry one, matching `send_payload`).
    pub fn queue(&mut self, payload: &[u8]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.reserve(HEADER + payload.len());
        self.buf.extend_from_slice(&seq.to_le_bytes());
        self.buf.extend_from_slice(&NO_DEADLINE.to_le_bytes());
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.buf.len()
    }

    /// Bytes queued but not yet written — this connection's reply
    /// backlog, which the governor compares against its slow-consumer
    /// cap.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Writes as much as the socket accepts; `Ok(true)` once drained.
    /// `WouldBlock` is progress-so-far, not an error.
    pub fn flush(&mut self, stream: &mut impl std::io::Write) -> std::io::Result<bool> {
        use std::io::ErrorKind;
        while self.start < self.buf.len() {
            match stream.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use std::time::Duration;

    fn frame_bytes(seq: u64, deadline: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&deadline.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn reader_reassembles_across_arbitrary_chunks() {
        let mut wire = frame_bytes(0, NO_DEADLINE, b"hello");
        wire.extend(frame_bytes(1, 250, b""));
        wire.extend(frame_bytes(2, NO_DEADLINE, &[7u8; 300]));

        // Feed one byte at a time: every split point must be survivable.
        let mut r = FrameReader::new(true);
        let mut got = Vec::new();
        for &b in &wire {
            r.extend_from(&[b]);
            while let Some(f) = r.next_frame().expect("valid frames") {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(&got[0].payload[..], b"hello");
        assert_eq!(got[0].deadline_ms, None);
        assert_eq!(got[1].deadline_ms, Some(250), "deadline survives the wire");
        assert!(got[1].payload.is_empty());
        assert_eq!(got[2].payload.len(), 300);
        assert!(!r.has_partial());
    }

    #[test]
    fn reader_rejects_oversize_length_prefix_as_frame_limit() {
        let mut r = FrameReader::new(false);
        r.extend_from(&frame_bytes(0, NO_DEADLINE, b"x")[..HEADER - 4]);
        r.extend_from(&(((1usize << 30) + 1) as u32).to_le_bytes());
        match r.next_frame() {
            Err(StreamError::Transport { kind: TransportErrorKind::FrameLimit, context }) => {
                assert!(context.contains("frame ceiling"), "{context}")
            }
            other => panic!("expected FrameLimit, got {other:?}"),
        }
        assert_eq!(r.buffered_len(), HEADER, "nothing past the header was buffered");
    }

    #[test]
    fn reader_ceiling_is_tightenable_per_connection() {
        // The governor hands pre-auth connections a small cap; a frame
        // the default would admit must then be rejected.
        let mut r = FrameReader::new(false);
        r.set_max_frame(1024);
        r.extend_from(&frame_bytes(0, NO_DEADLINE, &[7u8; 4096]));
        match r.next_frame() {
            Err(StreamError::Transport { kind: TransportErrorKind::FrameLimit, .. }) => {}
            other => panic!("expected FrameLimit under a 1 KiB ceiling, got {other:?}"),
        }
        // Relaxing back to the env default admits it again.
        let mut ok = FrameReader::new(false);
        ok.set_max_frame(1024);
        ok.set_max_frame(0);
        ok.extend_from(&frame_bytes(0, NO_DEADLINE, &[7u8; 4096]));
        assert!(ok.next_frame().expect("within default ceiling").is_some());
    }

    #[test]
    fn reader_enforces_seq_monotonicity() {
        let mut r = FrameReader::new(true);
        r.extend_from(&frame_bytes(5, NO_DEADLINE, b"a"));
        r.extend_from(&frame_bytes(5, NO_DEADLINE, b"b"));
        assert!(r.next_frame().expect("first ok").is_some());
        assert!(r.next_frame().is_err(), "duplicate seq must be rejected");
    }

    #[test]
    fn write_buf_stamps_monotonic_seqs_and_survives_partial_writes() {
        let mut w = WriteBuf::new();
        w.queue(b"first");
        w.queue(b"second");

        // A sink that accepts at most 3 bytes per call exercises the
        // partial-progress path.
        struct Dribble(Vec<u8>);
        impl std::io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = Dribble(Vec::new());
        while !w.flush(&mut sink).expect("writable") {}
        assert!(w.is_empty());

        let mut r = FrameReader::new(true);
        r.extend_from(&sink.0);
        let a = r.next_frame().expect("ok").expect("first");
        let b = r.next_frame().expect("ok").expect("second");
        assert_eq!((a.seq, &a.payload[..]), (0, &b"first"[..]));
        assert_eq!((b.seq, &b.payload[..]), (1, &b"second"[..]));
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn poller_observes_readiness_and_waker_wakes() {
        use std::io::Write;
        use std::os::fd::AsRawFd;

        assert!(supported());
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        poller.add(waker.raw_fd(), 0, false).expect("register waker");

        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        poller.add(listener.as_raw_fd(), 1, false).expect("register listener");

        // Nothing ready yet: a bounded wait returns empty.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(5))).expect("wait");
        assert!(events.is_empty(), "nothing should be ready");

        // A connect makes the listener readable.
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        poller.wait(&mut events, Some(Duration::from_millis(500))).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable), "accept readiness");
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nonblocking(true).expect("nonblocking");
        poller.add(stream.as_raw_fd(), 2, false).expect("register conn");

        // Data on the connection is reported against its token.
        client.write_all(b"ping").expect("send");
        poller.wait(&mut events, Some(Duration::from_millis(500))).expect("wait");
        assert!(events.iter().any(|e| e.token == 2 && e.readable), "read readiness");

        // Drain the pending bytes: level-triggered epoll would
        // otherwise keep reporting the connection and the indefinite
        // wait below would return before the waker fires.
        let mut buf = [0u8; 16];
        use std::io::Read;
        let mut conn = &stream;
        assert_eq!(conn.read(&mut buf).expect("drain"), 4);

        // A waker from another thread interrupts an indefinite wait.
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
        });
        loop {
            poller.wait(&mut events, None).expect("wait");
            if events.iter().any(|e| e.token == 0 && e.readable) {
                break;
            }
        }
        waker.drain();
        t.join().expect("waker thread");
    }
}
