//! The top-level PP-Stream session: key generation, operation
//! encapsulation, offline profiling, load-balanced resource allocation,
//! and pipelined streaming inference.

use crate::encapsulate::{encapsulate_with, MergedStage, StageRole};
use crate::messages::PlainTensorMsg;
use crate::plan::{AllocationPlan, PlanSource};
use crate::protocol::{
    EncryptStage, FinalNonLinearStage, LinearStage, NonLinearStage, PartitionMode, PermStore,
};
use crate::CoreError;
use pp_allocate::{even_allocation, solve, Allocation, LayerLoad, Role, ServerSpec, SolveConfig};
use pp_nn::scaling::ScaledModel;
use parking_lot::Mutex;
use pp_paillier::packing::PackingSpec;
use pp_paillier::{Keypair, RandomnessPool};
use pp_stream_runtime::{PipelineBuilder, StageReport, WorkerPool};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session configuration.
#[derive(Clone, Debug)]
pub struct PpStreamConfig {
    /// Paillier key size in bits. The paper uses 2048 [16]; tests and CI
    /// benches use smaller keys (every compared variant uses the same
    /// size, so relative results are unaffected — DESIGN.md §3).
    pub key_bits: usize,
    /// The deployment's servers (model-provider servers host linear
    /// stages, data-provider servers the rest — paper Table III).
    pub servers: Vec<ServerSpec>,
    /// Two threads per core when `true` (Eq. 8).
    pub hyperthreading: bool,
    /// Solve the ILP (Sec. IV-C); `false` = even split (Exp#3 baseline).
    pub load_balance: bool,
    /// Tensor partitioning (Sec. IV-D); `false` = whole-tensor-per-element
    /// (Exp#4 baseline).
    pub tensor_partition: bool,
    /// Inference requests profiled per stage offline (paper uses 100).
    pub profile_samples: usize,
    /// In-flight frames per link.
    pub link_capacity: usize,
    /// Merge adjacent same-type primitive layers into one stage
    /// (Sec. IV-B). `false` = one stage per primitive (ablation).
    pub merge_stages: bool,
    /// Determinism seed for keys, permutations, and encryption randomness.
    pub seed: u64,
}

impl Default for PpStreamConfig {
    fn default() -> Self {
        PpStreamConfig {
            key_bits: 512,
            servers: vec![
                ServerSpec { role: Role::Linear, cores: 4 },
                ServerSpec { role: Role::Linear, cores: 4 },
                ServerSpec { role: Role::NonLinear, cores: 4 },
            ],
            hyperthreading: true,
            load_balance: true,
            tensor_partition: true,
            profile_samples: 2,
            link_capacity: 4,
            merge_stages: true,
            seed: 0x9950_57EA,
        }
    }
}

impl PpStreamConfig {
    /// A fast configuration for unit tests: tiny key, two small servers.
    pub fn small_test(key_bits: usize) -> Self {
        PpStreamConfig {
            key_bits,
            servers: vec![
                ServerSpec { role: Role::Linear, cores: 4 },
                ServerSpec { role: Role::NonLinear, cores: 4 },
            ],
            hyperthreading: false,
            load_balance: true,
            tensor_partition: true,
            profile_samples: 1,
            link_capacity: 4,
            merge_stages: true,
            seed: 42,
        }
    }
}

/// Outcome statistics of one streaming run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-request end-to-end latency.
    pub latencies: Vec<Duration>,
    /// First-injection → last-arrival wall time.
    pub makespan: Duration,
    /// Mean of `latencies`; [`Duration::ZERO`] when the stream resolved
    /// zero items (empty input slice) — never a division by zero.
    pub mean_latency: Duration,
    /// Bytes over each inter-stage link.
    pub link_bytes: Vec<u64>,
    /// Bytes shipped to worker threads inside linear stages
    /// (Sec. IV-D's communication).
    pub intra_stage_bytes: u64,
    /// Stage names in pipeline order.
    pub stage_names: Vec<String>,
    /// Per-stage busy time.
    pub stage_busy: Vec<Duration>,
    /// Threads allocated per stage.
    pub stage_threads: Vec<usize>,
    /// Per-stage runtime metrics (items in/out, serialized bytes,
    /// compute time, queue wait, errors), in pipeline order.
    pub stages: Vec<StageReport>,
    /// Socket-level statistics when the run crossed real sockets
    /// ([`crate::net::NetworkedSession`]); `None` for in-process runs.
    pub transport: Option<crate::net::TransportReport>,
    /// Times the encrypt stage found the randomness pool drained and
    /// paid an inline `r^n` exponentiation on the request path. A
    /// non-zero value means the pool is undersized for the workload.
    pub pool_misses: u64,
}

/// A ready-to-run PP-Stream deployment for one model.
pub struct PpStream {
    scaled: ScaledModel,
    stages: Vec<MergedStage>,
    keypair: Keypair,
    config: PpStreamConfig,
    allocation: Allocation,
    plan: AllocationPlan,
    profile: Vec<f64>,
}

impl PpStream {
    /// Builds a session: generates keys, encapsulates the model into
    /// stages, profiles each stage offline, and solves (or evenly splits)
    /// the resource allocation.
    pub fn new(scaled: ScaledModel, config: PpStreamConfig) -> Result<Self, CoreError> {
        let stages = encapsulate_with(&scaled, config.merge_stages)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let keypair = Keypair::generate(config.key_bits, &mut rng);

        let n_pipeline_stages = stages.len() + 1;
        let mut session = PpStream {
            scaled,
            stages,
            keypair,
            config,
            allocation: Allocation { threads: vec![], server_of: vec![], objective: 0.0 },
            plan: AllocationPlan::profiling_baseline(n_pipeline_stages),
            profile: vec![],
        };
        session.profile = session.profile_stages()?;
        let (allocation, source) = session.allocate()?;
        session.plan = AllocationPlan::from_allocation(&allocation, source);
        session.allocation = allocation;
        Ok(session)
    }

    /// The merged stages (encrypt + alternating linear/non-linear).
    pub fn stages(&self) -> &[MergedStage] {
        &self.stages
    }

    /// The resource allocation in use.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The allocation plan driving per-stage pool sizes.
    pub fn plan(&self) -> &AllocationPlan {
        &self.plan
    }

    /// The offline profile `T_i` per pipeline stage (seconds).
    pub fn profile(&self) -> &[f64] {
        &self.profile
    }

    /// Offline profiling (Sec. IV-C): run sample inputs through the
    /// stages sequentially and average each stage's time. Pool sizes
    /// come from [`AllocationPlan::profiling_baseline`] — one worker per
    /// stage, because the simulate model scales single-thread times.
    fn profile_stages(&self) -> Result<Vec<f64>, CoreError> {
        let plan = AllocationPlan::profiling_baseline(self.stages.len() + 1);
        let pools: Vec<WorkerPool> =
            (0..plan.n_stages()).map(|i| WorkerPool::new(plan.threads_for(i))).collect();
        let samples = self.config.profile_samples.max(1);
        // 1 pipeline stage per merged stage, plus the encrypt stage.
        let mut times = vec![0.0f64; self.stages.len() + 1];
        let input_shape = self.scaled.input_shape().clone();

        for s in 0..samples {
            // Deterministic pseudo-random sample input in [-1, 1].
            let sample: Vec<f64> = (0..input_shape.len())
                .map(|i| (((i * 31 + s * 17) % 200) as f64 / 100.0) - 1.0)
                .collect();
            let input = Tensor::from_vec(input_shape.clone(), sample)
                .map_err(|e| CoreError::Model(e.to_string()))?;
            let execs = self.build_execs(PartitionMode::Partitioned);

            let scaled_in = self.scaled.scale_input(&input);
            let mut plain = PlainTensorMsg {
                seq: s as u64,
                shape: input_shape.dims().iter().map(|&d| d as u64).collect(),
                values: scaled_in.data().iter().map(|&v| v as i128).collect(),
            };

            let t0 = Instant::now();
            let mut msg = execs.encrypt.encrypt(plain.clone(), &pools[0]);
            times[0] += t0.elapsed().as_secs_f64();

            for (i, exec) in execs.stages.iter().enumerate() {
                let pool = &pools[i + 1];
                let t0 = Instant::now();
                match exec {
                    StageExec::Linear(l) => {
                        msg = l
                            .execute(msg, pool)
                            .map_err(|e| CoreError::Runtime(e.to_string()))?;
                    }
                    StageExec::NonLinear(nl) => {
                        if nl.is_last {
                            plain = nl
                                .execute_final(msg.clone(), pool)
                                .map_err(|e| CoreError::Runtime(e.to_string()))?;
                        } else {
                            msg = nl
                                .execute(msg, pool)
                                .map_err(|e| CoreError::Runtime(e.to_string()))?;
                        }
                    }
                }
                times[i + 1] += t0.elapsed().as_secs_f64();
            }
            let _ = plain;
        }
        for t in &mut times {
            // Guard against sub-resolution zero times.
            *t = (*t / samples as f64).max(1e-9);
        }
        Ok(times)
    }

    /// Detailed single-thread profiling for the deployment simulator
    /// (`crate::simulate`): per-stage wall time, dispatch bytes, and
    /// outgoing link bytes, measured in the given partition mode.
    pub fn profile_deployment(
        &self,
        mode: PartitionMode,
    ) -> Result<Vec<crate::simulate::StageProfile>, CoreError> {
        use crate::simulate::StageProfile;
        use pp_stream_runtime::wire::to_frame;

        let plan = AllocationPlan::profiling_baseline(self.stages.len() + 1);
        let pools: Vec<WorkerPool> =
            (0..plan.n_stages()).map(|i| WorkerPool::new(plan.threads_for(i))).collect();
        let execs = self.build_execs(mode);
        let input_shape = self.scaled.input_shape().clone();
        let sample: Vec<f64> = (0..input_shape.len())
            .map(|i| (((i * 31) % 200) as f64 / 100.0) - 1.0)
            .collect();
        let input = Tensor::from_vec(input_shape.clone(), sample)
            .map_err(|e| CoreError::Model(e.to_string()))?;
        let scaled_in = self.scaled.scale_input(&input);
        let plain = PlainTensorMsg {
            seq: 0,
            shape: input_shape.dims().iter().map(|&d| d as u64).collect(),
            values: scaled_in.data().iter().map(|&v| v as i128).collect(),
        };

        let mut profiles = Vec::with_capacity(self.stages.len() + 1);
        let t0 = Instant::now();
        let mut msg = execs.encrypt.encrypt(plain, &pools[0]);
        profiles.push(StageProfile {
            wall_1thread: t0.elapsed().as_secs_f64().max(1e-9),
            dispatch_bytes_1thread: 0, // element-wise encryption
            link_bytes: to_frame(&msg).len() as u64,
        });

        for (i, exec) in execs.stages.iter().enumerate() {
            let pool = &pools[i + 1];
            let t0 = Instant::now();
            let link_bytes;
            let dispatch_bytes;
            match exec {
                StageExec::Linear(l) => {
                    let before = l.intra_bytes.load(Ordering::Relaxed);
                    msg = l
                        .execute(msg, pool)
                        .map_err(|e| CoreError::Runtime(e.to_string()))?;
                    dispatch_bytes = l.intra_bytes.load(Ordering::Relaxed) - before;
                    link_bytes = to_frame(&msg).len() as u64;
                }
                StageExec::NonLinear(nl) => {
                    dispatch_bytes = 0; // element-wise decrypt + activation
                    if nl.is_last {
                        let out = nl
                            .execute_final(msg.clone(), pool)
                            .map_err(|e| CoreError::Runtime(e.to_string()))?;
                        link_bytes = to_frame(&out).len() as u64;
                    } else {
                        msg = nl
                            .execute(msg, pool)
                            .map_err(|e| CoreError::Runtime(e.to_string()))?;
                        link_bytes = to_frame(&msg).len() as u64;
                    }
                }
            }
            let wall = t0.elapsed().as_secs_f64().max(1e-9);
            profiles.push(StageProfile {
                wall_1thread: wall,
                dispatch_bytes_1thread: dispatch_bytes,
                link_bytes,
            });
        }
        Ok(profiles)
    }

    /// Re-solves the allocation for a different server set / policy
    /// without re-profiling. Returns threads per pipeline stage.
    pub fn allocation_for(
        &self,
        servers: &[ServerSpec],
        load_balance: bool,
        hyperthreading: bool,
    ) -> Result<Allocation, CoreError> {
        let layers = self.layer_loads();
        let alloc = if load_balance {
            solve(
                &layers,
                servers,
                SolveConfig { hyperthreading, node_budget: 2_000_000 },
            )?
        } else {
            even_allocation(&layers, servers, hyperthreading)?
        };
        Ok(alloc)
    }

    /// Like [`PpStream::allocation_for`], but returns an
    /// [`AllocationPlan`] ready to drive per-stage pool sizes: the
    /// solver's thread counts when `load_balance` holds and the ILP is
    /// feasible, the even-split baseline otherwise.
    pub fn plan_for(
        &self,
        servers: &[ServerSpec],
        load_balance: bool,
        hyperthreading: bool,
    ) -> Result<AllocationPlan, CoreError> {
        let layers = self.layer_loads();
        if load_balance {
            if let Ok(alloc) = solve(
                &layers,
                servers,
                SolveConfig { hyperthreading, node_budget: 2_000_000 },
            ) {
                return Ok(AllocationPlan::from_allocation(&alloc, PlanSource::Solver));
            }
        }
        let alloc = even_allocation(&layers, servers, hyperthreading)?;
        Ok(AllocationPlan::from_allocation(&alloc, PlanSource::EvenSplit))
    }

    /// The scaled model this session serves.
    pub fn scaled_model(&self) -> &ScaledModel {
        &self.scaled
    }

    /// Paillier key size in use.
    pub fn key_bits(&self) -> usize {
        self.config.key_bits
    }

    /// Solves the stage → server/thread allocation (Sec. IV-C). The
    /// even-split baseline is used when load balancing is disabled and
    /// as the fallback when the ILP instance is infeasible.
    fn allocate(&self) -> Result<(Allocation, PlanSource), CoreError> {
        let layers = self.layer_loads();
        if self.config.load_balance {
            if let Ok(alloc) = solve(
                &layers,
                &self.config.servers,
                SolveConfig {
                    hyperthreading: self.config.hyperthreading,
                    node_budget: 2_000_000,
                },
            ) {
                return Ok((alloc, PlanSource::Solver));
            }
        }
        let alloc = even_allocation(&layers, &self.config.servers, self.config.hyperthreading)?;
        Ok((alloc, PlanSource::EvenSplit))
    }

    /// Profiled load per pipeline stage, in the solver's input form.
    fn layer_loads(&self) -> Vec<LayerLoad> {
        self.pipeline_roles()
            .iter()
            .zip(&self.profile)
            .map(|(&role, &time)| LayerLoad { role, time })
            .collect()
    }

    /// Role of each pipeline stage (index 0 = encrypt stage).
    fn pipeline_roles(&self) -> Vec<Role> {
        std::iter::once(Role::NonLinear) // encrypt runs at the data provider
            .chain(self.stages.iter().map(|s| match s.role {
                StageRole::Linear => Role::Linear,
                StageRole::NonLinear => Role::NonLinear,
            }))
            .collect()
    }

    /// Human-readable stage names.
    fn stage_names(&self) -> Vec<String> {
        let mut names = vec!["encrypt@data".to_string()];
        let mut li = 0;
        let mut ni = 0;
        for s in &self.stages {
            match s.role {
                StageRole::Linear => {
                    names.push(format!("linear-{li}@model"));
                    li += 1;
                }
                StageRole::NonLinear => {
                    names.push(format!("nonlinear-{ni}@data"));
                    ni += 1;
                }
            }
        }
        names
    }

    fn build_execs(&self, mode: PartitionMode) -> Execs {
        self.build_execs_with(mode, None)
    }

    fn build_execs_with(
        &self,
        mode: PartitionMode,
        rand_pool: Option<Arc<Mutex<RandomnessPool>>>,
    ) -> Execs {
        let perms = Arc::new(PermStore::default());
        let n_linear = self.stages.iter().filter(|s| s.role == StageRole::Linear).count();
        let mut linear_idx = 0usize;
        let stages: Vec<StageExec> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, stage)| match stage.role {
                StageRole::Linear => {
                    let exec = LinearStage {
                        pk: self.keypair.public(),
                        stage: stage.clone(),
                        linear_idx,
                        is_first: linear_idx == 0,
                        is_last: linear_idx == n_linear - 1,
                        perms: Arc::clone(&perms),
                        mode,
                        seed: self.config.seed ^ 0x11AE ^ (i as u64) << 8,
                        intra_bytes: Arc::new(AtomicU64::new(0)),
                    };
                    linear_idx += 1;
                    StageExec::Linear(Arc::new(exec))
                }
                StageRole::NonLinear => StageExec::NonLinear(Arc::new(NonLinearStage {
                    keypair: self.keypair.clone(),
                    stage: stage.clone(),
                    factor: self.scaled.factor(),
                    is_last: i == self.stages.len() - 1,
                    seed: self.config.seed ^ 0x2020 ^ (i as u64) << 8,
                })),
            })
            .collect();
        Execs {
            encrypt: Arc::new(EncryptStage {
                pk: self.keypair.public(),
                seed: self.config.seed ^ 0x0E2C,
                rand_pool,
            }),
            stages,
        }
    }

    /// Streams a batch of inference requests through the pipeline,
    /// returning the scaled output tensors (at scale `F`) and the run
    /// report.
    pub fn infer_stream(
        &self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<Tensor<i64>>, RunReport), CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::Runtime("no inputs".into()));
        }
        let mode = if self.config.tensor_partition {
            PartitionMode::Partitioned
        } else {
            PartitionMode::None
        };
        // Precompute one r^n blinding factor per element of the batch
        // before the stream starts — the exponentiations run across the
        // encrypt stage's thread allocation, off the request path. The
        // fixed-base table comes from the process-wide cache so repeat
        // sessions under one key skip the comb precomputation entirely.
        let pk = self.keypair.public();
        let base = pp_paillier::shared_refill_cache().get(&pk);
        let rand_pool = Arc::new(Mutex::new(RandomnessPool::with_base(pk, base)));
        {
            let need = inputs.len() * self.scaled.input_shape().len();
            let workers = WorkerPool::new(self.plan.threads_for(0));
            rand_pool.lock().refill_parallel(need, &workers, self.config.seed ^ 0x5EED);
        }
        let execs = self.build_execs_with(mode, Some(Arc::clone(&rand_pool)));

        // Assemble the typed pipeline: the encrypt stage followed by one
        // protocol stage per merged stage. `.link()` marks the hops that
        // cross between the data provider and a model-provider server —
        // only those serialize through the wire codec; co-located hops
        // hand owned messages across directly.
        let names = self.stage_names();
        let roles = self.pipeline_roles();
        let n = execs.stages.len();
        let last = match execs.stages.last() {
            Some(StageExec::NonLinear(nl)) if nl.is_last => FinalNonLinearStage(Arc::clone(nl)),
            _ => {
                return Err(CoreError::Runtime(
                    "pipeline must end with a final non-linear stage".into(),
                ))
            }
        };

        let mut builder = PipelineBuilder::<PlainTensorMsg, PlainTensorMsg>::new()
            .with_capacity(self.config.link_capacity)
            .stage(names[0].clone(), self.plan.threads_for(0), Arc::clone(&execs.encrypt));
        for (i, exec) in execs.stages.iter().take(n - 1).enumerate() {
            if roles[i] != roles[i + 1] {
                builder = builder.link();
            }
            let threads = self.plan.threads_for(i + 1);
            builder = match exec {
                StageExec::Linear(l) => builder.stage(names[i + 1].clone(), threads, Arc::clone(l)),
                StageExec::NonLinear(nl) => {
                    builder.stage(names[i + 1].clone(), threads, Arc::clone(nl))
                }
            };
        }
        if roles[n - 1] != roles[n] {
            builder = builder.link();
        }
        let pipeline =
            builder.stage(names[n].clone(), self.plan.threads_for(n), last).build()?;

        // Source messages: scaled plaintext tensors (inside the data
        // provider, so no serialization before the encrypt stage).
        let msgs: Vec<PlainTensorMsg> = inputs
            .iter()
            .enumerate()
            .map(|(seq, input)| {
                let scaled_in = self.scaled.scale_input(input);
                PlainTensorMsg {
                    seq: seq as u64,
                    shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                    values: scaled_in.data().iter().map(|&v| v as i128).collect(),
                }
            })
            .collect();

        let (out_msgs, stats) = pipeline.process_stream(msgs)?;
        if out_msgs.len() != inputs.len() {
            return Err(CoreError::Runtime(format!(
                "expected {} results, got {}",
                inputs.len(),
                out_msgs.len()
            )));
        }

        let mut outputs = Vec::with_capacity(out_msgs.len());
        for msg in out_msgs {
            let shape: Vec<usize> = msg.shape.iter().map(|&d| d as usize).collect();
            let values: Vec<i64> = msg
                .values
                .iter()
                .map(|&v| i64::try_from(v).expect("final logits fit i64"))
                .collect();
            outputs
                .push(Tensor::from_vec(shape, values).map_err(|e| CoreError::Runtime(e.to_string()))?);
        }

        let report = RunReport {
            mean_latency: stats.mean_latency(),
            latencies: stats.latencies,
            makespan: stats.makespan,
            link_bytes: stats.link_bytes,
            intra_stage_bytes: execs.intra_total(),
            stage_names: names,
            stage_busy: stats.stage_busy,
            stage_threads: self.plan.threads().to_vec(),
            stages: stats.stages,
            transport: None,
            pool_misses: rand_pool.lock().misses(),
        };
        Ok((outputs, report))
    }

    /// Streams a batch through the pipeline with **batch-packed
    /// ciphertexts** (DESIGN.md §8): chunks of up to `slots` requests
    /// ride the slots of shared ciphertexts, so each homomorphic linear
    /// pass serves the whole chunk at once. The op budget is sized from
    /// the model via [`crate::packed::required_budget`]; an infeasible
    /// layout (slot too narrow for the budget) is an error. A chunk that
    /// fails mid-flight (e.g. an activation outgrowing the slot's value
    /// bound) falls back to the sequential unpacked executors, so the
    /// returned outputs are always complete — and always bit-identical
    /// to [`PpStream::infer_stream`]'s.
    pub fn infer_stream_packed(
        &self,
        inputs: &[Tensor<f64>],
        slot_bits: usize,
    ) -> Result<(Vec<Tensor<i64>>, RunReport), CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::Runtime("no inputs".into()));
        }
        let budget = crate::packed::required_budget(&self.stages);
        let spec = PackingSpec::for_key(&self.keypair.public(), slot_bits)
            .map(|s| s.with_budget(budget))
            .and_then(|s| s.check().map(|()| s))
            .map_err(|e| CoreError::Model(format!("packing infeasible: {e}")))?;
        let mode = if self.config.tensor_partition {
            PartitionMode::Partitioned
        } else {
            PartitionMode::None
        };
        // One factor per tensor *position* per chunk — the whole point:
        // encryption cost no longer scales with the batch size.
        let pk = self.keypair.public();
        let base = pp_paillier::shared_refill_cache().get(&pk);
        let rand_pool = Arc::new(Mutex::new(RandomnessPool::with_base(pk, base)));
        {
            let need = inputs.len().div_ceil(spec.slots) * self.scaled.input_shape().len();
            let workers = WorkerPool::new(self.plan.threads_for(0));
            rand_pool.lock().refill_parallel(need, &workers, self.config.seed ^ 0x5EED);
        }
        let execs = self.build_execs_with(mode, Some(Arc::clone(&rand_pool)));
        let pools: Vec<WorkerPool> =
            (0..self.plan.n_stages()).map(|i| WorkerPool::new(self.plan.threads_for(i))).collect();
        let names = self.stage_names();
        let mut stage_busy = vec![Duration::ZERO; self.stages.len() + 1];
        let mut latencies = Vec::with_capacity(inputs.len());
        let mut outputs: Vec<Option<Tensor<i64>>> = (0..inputs.len()).map(|_| None).collect();
        let t_start = Instant::now();

        for (c, chunk) in inputs.chunks(spec.slots).enumerate() {
            let base = c * spec.slots;
            let plains: Vec<PlainTensorMsg> = chunk
                .iter()
                .enumerate()
                .map(|(j, input)| {
                    let scaled_in = self.scaled.scale_input(input);
                    PlainTensorMsg {
                        seq: (base + j) as u64,
                        shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                        values: scaled_in.data().iter().map(|&v| v as i128).collect(),
                    }
                })
                .collect();
            let t0 = Instant::now();
            match self.run_packed_chunk(&execs, &pools, &plains, spec, &rand_pool, &mut stage_busy)
            {
                Ok(outs) => {
                    let dt = t0.elapsed();
                    for out in outs {
                        let idx = out.seq as usize;
                        outputs[idx] = Some(plain_to_tensor(&out)?);
                        latencies.push(dt);
                    }
                }
                Err(_) => {
                    // Packed chunk rejected (slot overflow, budget): run
                    // its members through the unpacked executors instead.
                    for plain in plains {
                        let t0 = Instant::now();
                        let idx = plain.seq as usize;
                        let out =
                            self.run_unpacked_item(&execs, &pools, plain, &mut stage_busy)?;
                        outputs[idx] = Some(plain_to_tensor(&out)?);
                        latencies.push(t0.elapsed());
                    }
                }
            }
        }

        let outputs: Vec<Tensor<i64>> = outputs
            .into_iter()
            .map(|o| o.ok_or_else(|| CoreError::Runtime("unresolved packed request".into())))
            .collect::<Result<_, _>>()?;
        let makespan = t_start.elapsed();
        let mean_latency = latencies.iter().sum::<Duration>() / latencies.len().max(1) as u32;
        let report = RunReport {
            latencies,
            makespan,
            mean_latency,
            link_bytes: vec![],
            intra_stage_bytes: execs.intra_total(),
            stage_names: names,
            stage_busy,
            stage_threads: self.plan.threads().to_vec(),
            stages: vec![],
            transport: None,
            pool_misses: rand_pool.lock().misses(),
        };
        Ok((outputs, report))
    }

    /// One packed chunk through every stage executor, sequentially.
    fn run_packed_chunk(
        &self,
        execs: &Execs,
        pools: &[WorkerPool],
        plains: &[PlainTensorMsg],
        spec: PackingSpec,
        rand_pool: &Arc<Mutex<RandomnessPool>>,
        stage_busy: &mut [Duration],
    ) -> Result<Vec<PlainTensorMsg>, CoreError> {
        use crate::packed;
        let rt = |e: String| CoreError::Runtime(e);
        let t0 = Instant::now();
        let mut msg = packed::pack_plain_batch(
            &self.keypair.public(),
            spec,
            plains,
            &mut rand_pool.lock(),
            execs.encrypt.seed,
        )
        .map_err(|e| rt(format!("packed encode: {e}")))?;
        stage_busy[0] += t0.elapsed();

        let (last, mids) = execs
            .stages
            .split_last()
            .ok_or_else(|| rt("empty pipeline".into()))?;
        for (i, exec) in mids.iter().enumerate() {
            let t0 = Instant::now();
            msg = match exec {
                StageExec::Linear(l) => packed::execute_packed_linear(l, msg)
                    .map_err(|e| rt(e.to_string()))?,
                StageExec::NonLinear(nl) => packed::repack_nonlinear(nl, msg, &pools[i + 1])
                    .map_err(|e| rt(e.to_string()))?,
            };
            stage_busy[i + 1] += t0.elapsed();
        }
        let StageExec::NonLinear(nl) = last else {
            return Err(rt("pipeline must end with a final non-linear stage".into()));
        };
        if !nl.is_last {
            return Err(rt("pipeline must end with a final non-linear stage".into()));
        }
        let t0 = Instant::now();
        let outs = packed::unpack_final(nl, msg, &pools[execs.stages.len()])
            .map_err(|e| rt(e.to_string()))?;
        stage_busy[execs.stages.len()] += t0.elapsed();
        Ok(outs)
    }

    /// One request through the unpacked executors, sequentially — the
    /// fallback for a rejected packed chunk (identical math and seeds to
    /// the pipelined path, so results stay deterministic).
    fn run_unpacked_item(
        &self,
        execs: &Execs,
        pools: &[WorkerPool],
        plain: PlainTensorMsg,
        stage_busy: &mut [Duration],
    ) -> Result<PlainTensorMsg, CoreError> {
        let t0 = Instant::now();
        let mut msg = execs.encrypt.encrypt(plain, &pools[0]);
        stage_busy[0] += t0.elapsed();
        let mut out = None;
        for (i, exec) in execs.stages.iter().enumerate() {
            let t0 = Instant::now();
            match exec {
                StageExec::Linear(l) => {
                    msg = l
                        .execute(msg, &pools[i + 1])
                        .map_err(|e| CoreError::Runtime(e.to_string()))?;
                }
                StageExec::NonLinear(nl) => {
                    if nl.is_last {
                        out = Some(
                            nl.execute_final(msg.clone(), &pools[i + 1])
                                .map_err(|e| CoreError::Runtime(e.to_string()))?,
                        );
                    } else {
                        msg = nl
                            .execute(msg, &pools[i + 1])
                            .map_err(|e| CoreError::Runtime(e.to_string()))?;
                    }
                }
            }
            stage_busy[i + 1] += t0.elapsed();
        }
        out.ok_or_else(|| CoreError::Runtime("pipeline missing final stage".into()))
    }

    /// Streams requests and returns the predicted class per input.
    pub fn classify_stream(
        &self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<usize>, RunReport), CoreError> {
        let (outputs, report) = self.infer_stream(inputs)?;
        let classes = outputs
            .iter()
            .map(pp_nn::activation::argmax_i64)
            .collect();
        Ok((classes, report))
    }
}

/// Converts a final plaintext message to the session's output tensor.
fn plain_to_tensor(msg: &PlainTensorMsg) -> Result<Tensor<i64>, CoreError> {
    let shape: Vec<usize> = msg.shape.iter().map(|&d| d as usize).collect();
    let values: Vec<i64> = msg
        .values
        .iter()
        .map(|&v| i64::try_from(v).expect("final logits fit i64"))
        .collect();
    Tensor::from_vec(shape, values).map_err(|e| CoreError::Runtime(e.to_string()))
}

enum StageExec {
    Linear(Arc<LinearStage>),
    NonLinear(Arc<NonLinearStage>),
}

struct Execs {
    encrypt: Arc<EncryptStage>,
    stages: Vec<StageExec>,
}

impl Execs {
    /// Total bytes dispatched to worker threads inside linear stages
    /// (Sec. IV-D's intra-stage communication), summed over the
    /// per-stage counters.
    fn intra_total(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                StageExec::Linear(l) => l.intra_bytes.load(Ordering::Relaxed),
                StageExec::NonLinear(_) => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::{zoo, ScaledModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_session(seed: u64) -> (pp_nn::Model, PpStream) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::mlp("m", &[4, 6, 3], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let session = PpStream::new(scaled, PpStreamConfig::small_test(128)).unwrap();
        (model, session)
    }

    #[test]
    fn classification_matches_plaintext() {
        let (model, session) = small_session(1);
        let inputs: Vec<Tensor<f64>> = (0..4)
            .map(|i| {
                Tensor::from_flat(vec![
                    (i as f64 * 0.3).sin(),
                    -0.4,
                    0.2 * i as f64,
                    0.5 - 0.1 * i as f64,
                ])
            })
            .collect();
        let (classes, report) = session.classify_stream(&inputs).unwrap();
        for (input, &got) in inputs.iter().zip(&classes) {
            assert_eq!(got, model.classify(input).unwrap());
        }
        assert_eq!(report.latencies.len(), 4);
        assert!(report.link_bytes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn outputs_match_scaled_reference_exactly() {
        let (_, session) = small_session(2);
        let input = Tensor::from_flat(vec![0.9, -0.1, 0.0, 0.33]);
        let (outputs, _) = session.infer_stream(std::slice::from_ref(&input)).unwrap();
        let want = session.scaled.forward_scaled(&session.scaled.scale_input(&input)).unwrap();
        assert_eq!(outputs[0].data(), want.data());
    }

    #[test]
    fn profile_and_allocation_cover_all_stages() {
        let (_, session) = small_session(3);
        let n = session.stages().len() + 1;
        assert_eq!(session.profile().len(), n);
        assert_eq!(session.allocation().threads.len(), n);
        assert!(session.allocation().threads.iter().all(|&t| t >= 1));
    }

    #[test]
    fn no_load_balance_config_runs() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = zoo::mlp("m", &[3, 4, 2], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 10);
        let mut cfg = PpStreamConfig::small_test(128);
        cfg.load_balance = false;
        let session = PpStream::new(scaled, cfg).unwrap();
        let input = Tensor::from_flat(vec![0.5, 0.5, -0.5]);
        let (classes, _) = session.classify_stream(std::slice::from_ref(&input)).unwrap();
        assert_eq!(classes[0], model.classify(&input).unwrap());
    }

    #[test]
    fn no_partition_config_matches_partitioned_results() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = zoo::mlp("m", &[3, 5, 2], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let input = Tensor::from_flat(vec![0.2, -0.7, 0.4]);

        let mut cfg = PpStreamConfig::small_test(128);
        cfg.tensor_partition = false;
        let s1 = PpStream::new(scaled.clone(), cfg).unwrap();
        let s2 = PpStream::new(scaled, PpStreamConfig::small_test(128)).unwrap();
        let (o1, r1) = s1.infer_stream(std::slice::from_ref(&input)).unwrap();
        let (o2, r2) = s2.infer_stream(&[input]).unwrap();
        assert_eq!(o1[0].data(), o2[0].data());
        assert!(
            r1.intra_stage_bytes >= r2.intra_stage_bytes,
            "partitioning should not increase thread-input bytes"
        );
    }

    #[test]
    fn avgpool_model_end_to_end() {
        // AvgPool's sum half runs homomorphically; the window² divisor
        // folds into the next rescale. The pipeline must match the scaled
        // reference exactly.
        let mut rng = StdRng::seed_from_u64(60);
        let model = zoo::avgpool_convnet("avg", (1, 6, 6), 2, 3, &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).unwrap();
        let input = Tensor::from_vec(
            vec![1, 6, 6],
            (0..36).map(|i| ((i * 7) % 12) as f64 / 12.0 - 0.5).collect(),
        )
        .unwrap();
        let (outputs, _) = session.infer_stream(std::slice::from_ref(&input)).unwrap();
        let want = scaled.forward_scaled(&scaled.scale_input(&input)).unwrap();
        assert_eq!(outputs[0].data(), want.data());
    }

    #[test]
    fn packed_stream_matches_unpacked_bit_for_bit() {
        // Five requests across two packed chunks (3 slots at 32-bit
        // slots under a 128-bit key) must produce exactly the unpacked
        // pipeline's scaled outputs — the tentpole acceptance property.
        let (_, session) = small_session(7);
        let inputs: Vec<Tensor<f64>> = (0..5)
            .map(|i| {
                Tensor::from_flat(vec![
                    (i as f64 * 0.7).cos(),
                    0.3 - 0.2 * i as f64,
                    -0.6,
                    0.1 * i as f64,
                ])
            })
            .collect();
        let (unpacked, _) = session.infer_stream(&inputs).unwrap();
        let (packed, report) = session.infer_stream_packed(&inputs, 32).unwrap();
        assert_eq!(packed.len(), unpacked.len());
        for (j, (p, u)) in packed.iter().zip(&unpacked).enumerate() {
            assert_eq!(p.data(), u.data(), "request {j} diverges under packing");
        }
        assert_eq!(report.latencies.len(), 5);
        assert_eq!(report.pool_misses, 0, "refill must cover packed encodes");
    }

    #[test]
    fn packed_stream_rejects_infeasible_layout() {
        // An 8-bit slot cannot hold the MLP's op budget; the session
        // reports the infeasibility instead of silently unpacking.
        let (_, session) = small_session(8);
        let input = Tensor::from_flat(vec![0.1, 0.2, 0.3, 0.4]);
        let err = session.infer_stream_packed(std::slice::from_ref(&input), 8).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)), "{err}");
    }

    #[test]
    fn conv_model_end_to_end() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = zoo::small_convnet("c", (1, 5, 5), 2, 3, &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let session = PpStream::new(scaled, PpStreamConfig::small_test(128)).unwrap();
        let input = Tensor::from_vec(
            vec![1, 5, 5],
            (0..25).map(|i| ((i * 13) % 10) as f64 / 10.0 - 0.5).collect(),
        )
        .unwrap();
        let (classes, _) = session.classify_stream(std::slice::from_ref(&input)).unwrap();
        assert_eq!(classes[0], model.classify(&input).unwrap());
    }
}
