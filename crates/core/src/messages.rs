//! Wire messages exchanged between pipeline stages (and, for the
//! cross-provider hops, between the model and data providers' servers).

use pp_stream_runtime::{Decoder, Encoder, StreamError, WireDecode, WireEncode};

/// A tensor of Paillier ciphertexts in flight. Everything that crosses
/// the provider boundary is this message — never plaintext values
/// (paper Sec. II-C security guarantee, asserted by integration tests).
#[derive(Clone, Debug, PartialEq)]
pub struct EncTensorMsg {
    /// Request sequence number (pipelining bookkeeping).
    pub seq: u64,
    /// Tensor shape (the only metadata the threat model concedes).
    pub shape: Vec<u64>,
    /// Whether element positions are currently permuted.
    pub obfuscated: bool,
    /// Big-endian ciphertext bytes, one per element.
    pub cts: Vec<Vec<u8>>,
}

impl WireEncode for EncTensorMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::EncTensor as u8);
        enc.put_u64(self.seq);
        self.shape.encode(enc);
        enc.put_u8(self.obfuscated as u8);
        self.cts.encode(enc);
    }
}

impl WireDecode for EncTensorMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::EncTensor)?;
        Ok(EncTensorMsg {
            seq: dec.get_u64()?,
            shape: Vec::<u64>::decode(dec)?,
            obfuscated: dec.get_u8()? != 0,
            cts: Vec::<Vec<u8>>::decode(dec)?,
        })
    }
}

/// A plaintext scaled tensor — exists only *inside* the data provider
/// (source → encrypt stage, and the final stage → sink).
#[derive(Clone, Debug, PartialEq)]
pub struct PlainTensorMsg {
    pub seq: u64,
    pub shape: Vec<u64>,
    /// Scaled integer values (`i128`: pre-rescale linear outputs can
    /// exceed 64 bits).
    pub values: Vec<i128>,
}

impl WireEncode for PlainTensorMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::PlainTensor as u8);
        enc.put_u64(self.seq);
        self.shape.encode(enc);
        self.values.encode(enc);
    }
}

impl WireDecode for PlainTensorMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::PlainTensor)?;
        Ok(PlainTensorMsg {
            seq: dec.get_u64()?,
            shape: Vec::<u64>::decode(dec)?,
            values: Vec::<i128>::decode(dec)?,
        })
    }
}

/// Message type tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgTag {
    EncTensor = 1,
    PlainTensor = 2,
}

/// Peeks the tag byte of a frame without consuming the decoder.
pub fn peek_tag(frame: &bytes::Bytes) -> Option<MsgTag> {
    match frame.first() {
        Some(1) => Some(MsgTag::EncTensor),
        Some(2) => Some(MsgTag::PlainTensor),
        _ => None,
    }
}

fn expect_tag(dec: &mut Decoder, want: MsgTag) -> Result<(), StreamError> {
    let got = dec.get_u8()?;
    if got != want as u8 {
        return Err(StreamError::Decode(format!(
            "expected message tag {}, got {got}",
            want as u8
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_stream_runtime::wire::{from_frame, to_frame};

    #[test]
    fn enc_tensor_roundtrip() {
        let msg = EncTensorMsg {
            seq: 42,
            shape: vec![2, 3],
            obfuscated: true,
            cts: vec![vec![1, 2, 3], vec![], vec![255; 64], vec![0], vec![9], vec![8, 7]],
        };
        let back: EncTensorMsg = from_frame(to_frame(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn plain_tensor_roundtrip() {
        let msg = PlainTensorMsg {
            seq: 7,
            shape: vec![4],
            values: vec![-1, 0, i128::MAX, i128::MIN],
        };
        let back: PlainTensorMsg = from_frame(to_frame(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn tag_mismatch_rejected() {
        let enc = to_frame(&PlainTensorMsg { seq: 0, shape: vec![], values: vec![] });
        let res: Result<EncTensorMsg, _> = from_frame(enc);
        assert!(res.is_err());
    }

    #[test]
    fn peek_tag_identifies_frames() {
        let enc = to_frame(&EncTensorMsg { seq: 0, shape: vec![], obfuscated: false, cts: vec![] });
        assert_eq!(peek_tag(&enc), Some(MsgTag::EncTensor));
        let plain = to_frame(&PlainTensorMsg { seq: 0, shape: vec![], values: vec![] });
        assert_eq!(peek_tag(&plain), Some(MsgTag::PlainTensor));
        assert_eq!(peek_tag(&bytes::Bytes::from_static(&[99])), None);
    }
}
