//! Wire messages exchanged between pipeline stages (and, for the
//! cross-provider hops, between the model and data providers' servers).

use pp_stream_runtime::{Decoder, Encoder, StreamError, WireDecode, WireEncode};

/// A tensor of Paillier ciphertexts in flight. Everything that crosses
/// the provider boundary is this message — never plaintext values
/// (paper Sec. II-C security guarantee, asserted by integration tests).
#[derive(Clone, Debug, PartialEq)]
pub struct EncTensorMsg {
    /// Request sequence number (pipelining bookkeeping).
    pub seq: u64,
    /// Tensor shape (the only metadata the threat model concedes).
    pub shape: Vec<u64>,
    /// Whether element positions are currently permuted.
    pub obfuscated: bool,
    /// Big-endian ciphertext bytes, one per element.
    pub cts: Vec<Vec<u8>>,
}

impl WireEncode for EncTensorMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::EncTensor as u8);
        enc.put_u64(self.seq);
        self.shape.encode(enc);
        enc.put_u8(self.obfuscated as u8);
        self.cts.encode(enc);
    }
}

impl WireDecode for EncTensorMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::EncTensor)?;
        Ok(EncTensorMsg {
            seq: dec.get_u64()?,
            shape: Vec::<u64>::decode(dec)?,
            obfuscated: dec.get_u8()? != 0,
            cts: Vec::<Vec<u8>>::decode(dec)?,
        })
    }
}

/// A plaintext scaled tensor — exists only *inside* the data provider
/// (source → encrypt stage, and the final stage → sink).
#[derive(Clone, Debug, PartialEq)]
pub struct PlainTensorMsg {
    pub seq: u64,
    pub shape: Vec<u64>,
    /// Scaled integer values (`i128`: pre-rescale linear outputs can
    /// exceed 64 bits).
    pub values: Vec<i128>,
}

impl WireEncode for PlainTensorMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::PlainTensor as u8);
        enc.put_u64(self.seq);
        self.shape.encode(enc);
        self.values.encode(enc);
    }
}

impl WireDecode for PlainTensorMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::PlainTensor)?;
        Ok(PlainTensorMsg {
            seq: dec.get_u64()?,
            shape: Vec::<u64>::decode(dec)?,
            values: Vec::<i128>::decode(dec)?,
        })
    }
}

/// Version of the two-process deployment protocol (handshake + frame
/// exchange). Bumped on any wire-incompatible change; peers with
/// different versions refuse to talk.
///
/// v2: [`AcceptMsg`] carries a server-assigned session ID, and the
/// session-resume message set ([`ResumeMsg`], [`AckMsg`], [`ByeMsg`])
/// exists.
///
/// v3: [`RejectMsg`] carries a [`RejectCode`] and a busy-server
/// `retry_after_ms` hint (admission control), and the per-item error
/// reply [`ItemErrorMsg`] exists (deadline expiry / quarantine / load
/// shedding are per-item outcomes, not session-fatal failures).
///
/// v4: ciphertext packing. [`HelloMsg`] proposes a slot layout
/// (`pack_slot_bits` / `pack_slots` / `pack_budget`), [`AcceptMsg`]
/// echoes `pack_slot_bits` (zero declines), the batched frame
/// [`PackedTensorMsg`] exists, and a failed packed round is answered
/// with [`ItemErrorKind::PackedAbort`] so the client can replay the
/// batch unpacked. Unpacked operation (all packing fields zero) is the
/// compatibility default.
pub const PROTOCOL_VERSION: u32 = 4;

/// Deployment handshake: the data provider's opening message. Carries
/// everything both sides must agree on before ciphertexts flow —
/// protocol version, the Paillier public key (with a fingerprint so a
/// mismatch is reported compactly), and a digest of the merged-stage
/// topology so a client built against a different model layout fails
/// fast instead of mid-stream.
#[derive(Clone, Debug, PartialEq)]
pub struct HelloMsg {
    /// Sender's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Paillier public key modulus `n`, big-endian bytes.
    pub pk_n: Vec<u8>,
    /// FNV-1a-64 fingerprint of `pk_n` (echoed in [`AcceptMsg`]).
    pub pk_fingerprint: u64,
    /// Digest of the merged-stage topology (roles, shapes, op kinds).
    pub topology: u64,
    /// Number of merged protocol stages.
    pub n_stages: u32,
    /// Fixed-point scaling factor both sides must share.
    pub factor: i64,
    /// Proposed packed-ciphertext slot width in bits; zero means the
    /// client will stream unpacked (the compatibility default).
    pub pack_slot_bits: u32,
    /// Slots per packed ciphertext under the proposed layout (zero when
    /// unpacked).
    pub pack_slots: u32,
    /// Operation budget the client sized its slots for — the maximum
    /// offset weight any packed round may accumulate. The server rejects
    /// packing (echoing zero) if its model needs more.
    pub pack_budget: u64,
}

impl WireEncode for HelloMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::Hello as u8);
        enc.put_u32(self.version);
        self.pk_n.encode(enc);
        enc.put_u64(self.pk_fingerprint);
        enc.put_u64(self.topology);
        enc.put_u32(self.n_stages);
        enc.put_i64(self.factor);
        enc.put_u32(self.pack_slot_bits);
        enc.put_u32(self.pack_slots);
        enc.put_u64(self.pack_budget);
    }
}

impl WireDecode for HelloMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::Hello)?;
        Ok(HelloMsg {
            version: dec.get_u32()?,
            pk_n: Vec::<u8>::decode(dec)?,
            pk_fingerprint: dec.get_u64()?,
            topology: dec.get_u64()?,
            n_stages: dec.get_u32()?,
            factor: dec.get_i64()?,
            pack_slot_bits: dec.get_u32()?,
            pack_slots: dec.get_u32()?,
            pack_budget: dec.get_u64()?,
        })
    }
}

/// Deployment handshake: the model provider's acceptance. Echoes the
/// agreed parameters so the client can double-check the server saw what
/// it sent.
#[derive(Clone, Debug, PartialEq)]
pub struct AcceptMsg {
    pub version: u32,
    pub pk_fingerprint: u64,
    pub topology: u64,
    /// Server-assigned session ID. A client that loses its connection
    /// presents this in a [`ResumeMsg`] to pick the stream back up
    /// without redoing delivered work.
    pub session: u64,
    /// Echo of the client's accepted `pack_slot_bits`; zero declines
    /// packing (the client silently streams unpacked).
    pub pack_slot_bits: u32,
}

impl WireEncode for AcceptMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::Accept as u8);
        enc.put_u32(self.version);
        enc.put_u64(self.pk_fingerprint);
        enc.put_u64(self.topology);
        enc.put_u64(self.session);
        enc.put_u32(self.pack_slot_bits);
    }
}

impl WireDecode for AcceptMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::Accept)?;
        Ok(AcceptMsg {
            version: dec.get_u32()?,
            pk_fingerprint: dec.get_u64()?,
            topology: dec.get_u64()?,
            session: dec.get_u64()?,
            pack_slot_bits: dec.get_u32()?,
        })
    }
}

/// Why the model provider refused a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// Deployment mismatch (version, key, topology, unknown session) —
    /// permanent until the operator fixes the deployment.
    Mismatch = 0,
    /// The server is at its admission-control capacity. Transient: the
    /// client should back off and retry, honoring `retry_after_ms`.
    Busy = 1,
}

/// Deployment handshake: the model provider's refusal, naming the
/// mismatch so the operator can fix the deployment instead of guessing.
/// A [`RejectCode::Busy`] refusal is transient and carries a
/// `retry_after_ms` backoff hint.
#[derive(Clone, Debug, PartialEq)]
pub struct RejectMsg {
    pub code: RejectCode,
    pub reason: String,
    /// For [`RejectCode::Busy`]: how long the client should wait before
    /// retrying, in milliseconds. Zero (and any value on other codes)
    /// means "no hint".
    pub retry_after_ms: u64,
}

impl RejectMsg {
    /// A permanent deployment-mismatch refusal.
    pub fn mismatch(reason: impl Into<String>) -> Self {
        RejectMsg { code: RejectCode::Mismatch, reason: reason.into(), retry_after_ms: 0 }
    }

    /// A transient at-capacity refusal with a backoff hint.
    pub fn busy(reason: impl Into<String>, retry_after_ms: u64) -> Self {
        RejectMsg { code: RejectCode::Busy, reason: reason.into(), retry_after_ms }
    }
}

impl WireEncode for RejectMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::Reject as u8);
        enc.put_u8(self.code as u8);
        self.reason.encode(enc);
        enc.put_u64(self.retry_after_ms);
    }
}

impl WireDecode for RejectMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::Reject)?;
        let code = match dec.get_u8()? {
            0 => RejectCode::Mismatch,
            1 => RejectCode::Busy,
            other => {
                return Err(StreamError::Decode(format!("unknown reject code {other}")));
            }
        };
        Ok(RejectMsg { code, reason: String::decode(dec)?, retry_after_ms: dec.get_u64()? })
    }
}

/// Session resume: the data provider's opening message on a
/// *re*connection. Instead of a full [`HelloMsg`] (the server already
/// holds the key and parameters in its session table), the client
/// presents its session ID and how many items it has fully completed —
/// the server syncs its ack floor to `items_done` and the client replays
/// only the in-flight item. Answered by [`AcceptMsg`] (echoing the
/// session) or [`RejectMsg`] (unknown/expired session, digest mismatch).
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeMsg {
    /// Sender's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// The session ID from the original [`AcceptMsg`].
    pub session: u64,
    /// Count of fully completed items: items `0..items_done` are done
    /// and must never be re-executed (a count, not a last-seq, so a
    /// fresh stream needs no sentinel value).
    pub items_done: u64,
    /// Topology digest, re-checked so a client rebuilt against a
    /// different model cannot resume into a stale session.
    pub topology: u64,
}

impl WireEncode for ResumeMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::Resume as u8);
        enc.put_u32(self.version);
        enc.put_u64(self.session);
        enc.put_u64(self.items_done);
        enc.put_u64(self.topology);
    }
}

impl WireDecode for ResumeMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::Resume)?;
        Ok(ResumeMsg {
            version: dec.get_u32()?,
            session: dec.get_u64()?,
            items_done: dec.get_u64()?,
            topology: dec.get_u64()?,
        })
    }
}

/// Client → server: items `0..items_done` are fully delivered. Raises
/// the server's exactly-once floor — a later round-0 request below the
/// floor is a protocol violation, not a replay. Fire-and-forget (no
/// reply); a lost ack is re-synced by the next [`ResumeMsg`].
#[derive(Clone, Debug, PartialEq)]
pub struct AckMsg {
    pub items_done: u64,
}

impl WireEncode for AckMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::Ack as u8);
        enc.put_u64(self.items_done);
    }
}

impl WireDecode for AckMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::Ack)?;
        Ok(AckMsg { items_done: dec.get_u64()? })
    }
}

/// Client → server: deliberate end of session. Distinguishes a clean
/// shutdown from a crashed client — both close the socket, but only a
/// dropped connection leaves resumable session state behind.
#[derive(Clone, Debug, PartialEq)]
pub struct ByeMsg;

impl WireEncode for ByeMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::Bye as u8);
    }
}

impl WireDecode for ByeMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::Bye)?;
        Ok(ByeMsg)
    }
}

/// Why the server failed one item while keeping the session alive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemErrorKind {
    /// The item's end-to-end deadline budget ran out before (or while)
    /// the server worked on it.
    DeadlineExpired = 0,
    /// The item made a protocol stage panic; it is quarantined and will
    /// never be re-executed, including across session resumes.
    Quarantined = 1,
    /// The server shed the item under overload (per-session in-flight
    /// cap exceeded). Unlike the other kinds, a shed item may be
    /// retried later.
    Shed = 2,
    /// A packed round failed as a whole (a member item quarantined or
    /// expired, a packing-arithmetic error, a panic). The `seq` is the
    /// batch's first member; the client replays every unresolved member
    /// unpacked, where per-item outcomes apply individually.
    PackedAbort = 3,
    /// The client could not use the server's reply for this item: a
    /// well-formed ciphertext decrypted outside the message space.
    /// Raised client-side (never sent by an honest server), so a
    /// corrupt-but-decodable reply fails one item instead of the
    /// process.
    CorruptReply = 4,
}

/// Server → client: a *per-item* failure reply, sent in place of the
/// item's result. The session — and the exactly-once floors — survive;
/// only this item is affected. This is the wire half of the overload
/// taxonomy: shed / expired / quarantined are item outcomes, fatal
/// errors tear down the connection instead.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemErrorMsg {
    /// Sequence number of the failed item.
    pub seq: u64,
    pub kind: ItemErrorKind,
    /// Human-readable detail (panic message, expired budget, …).
    pub detail: String,
}

impl WireEncode for ItemErrorMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::ItemError as u8);
        enc.put_u64(self.seq);
        enc.put_u8(self.kind as u8);
        self.detail.encode(enc);
    }
}

impl WireDecode for ItemErrorMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::ItemError)?;
        let seq = dec.get_u64()?;
        let kind = match dec.get_u8()? {
            0 => ItemErrorKind::DeadlineExpired,
            1 => ItemErrorKind::Quarantined,
            2 => ItemErrorKind::Shed,
            3 => ItemErrorKind::PackedAbort,
            4 => ItemErrorKind::CorruptReply,
            other => {
                return Err(StreamError::Decode(format!("unknown item-error kind {other}")));
            }
        };
        Ok(ItemErrorMsg { seq, kind, detail: String::decode(dec)? })
    }
}

/// A tensor of *packed* Paillier ciphertexts in flight: slot `j` of
/// ciphertext `i` holds activation `i` of request `seqs[j]`, so one
/// frame carries a whole batch's worth of one tensor position
/// (batch-major slot layout). Carries the full slot-layout metadata so
/// the receiver can reconstruct the [`PackingSpec`] without shared
/// out-of-band state.
///
/// [`PackingSpec`]: pp_paillier::PackingSpec
#[derive(Clone, Debug, PartialEq)]
pub struct PackedTensorMsg {
    /// Request seqs occupying slots `0..seqs.len()`, in slot order.
    pub seqs: Vec<u64>,
    /// Per-item tensor shape (all batch members share it).
    pub shape: Vec<u64>,
    /// Whether element positions are currently permuted.
    pub obfuscated: bool,
    /// Slot width in bits of the packing layout.
    pub slot_bits: u32,
    /// Total slots per ciphertext (`seqs.len()` of them are active).
    pub slots: u32,
    /// Operation budget the layout was sized for.
    pub op_budget: u64,
    /// Accumulated offset weight of every ciphertext in the frame
    /// (uniform: senders raise all elements to the stage maximum).
    pub weight: u64,
    /// Big-endian ciphertext bytes, one per tensor element.
    pub cts: Vec<Vec<u8>>,
}

impl WireEncode for PackedTensorMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MsgTag::PackedTensor as u8);
        self.seqs.encode(enc);
        self.shape.encode(enc);
        enc.put_u8(self.obfuscated as u8);
        enc.put_u32(self.slot_bits);
        enc.put_u32(self.slots);
        enc.put_u64(self.op_budget);
        enc.put_u64(self.weight);
        self.cts.encode(enc);
    }
}

impl WireDecode for PackedTensorMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        expect_tag(dec, MsgTag::PackedTensor)?;
        Ok(PackedTensorMsg {
            seqs: Vec::<u64>::decode(dec)?,
            shape: Vec::<u64>::decode(dec)?,
            obfuscated: dec.get_u8()? != 0,
            slot_bits: dec.get_u32()?,
            slots: dec.get_u32()?,
            op_budget: dec.get_u64()?,
            weight: dec.get_u64()?,
            cts: Vec::<Vec<u8>>::decode(dec)?,
        })
    }
}

/// Message type tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgTag {
    EncTensor = 1,
    PlainTensor = 2,
    Hello = 3,
    Accept = 4,
    Reject = 5,
    Resume = 6,
    Ack = 7,
    Bye = 8,
    ItemError = 9,
    PackedTensor = 10,
}

/// Peeks the tag byte of a frame without consuming the decoder.
pub fn peek_tag(frame: &bytes::Bytes) -> Option<MsgTag> {
    match frame.first() {
        Some(1) => Some(MsgTag::EncTensor),
        Some(2) => Some(MsgTag::PlainTensor),
        Some(3) => Some(MsgTag::Hello),
        Some(4) => Some(MsgTag::Accept),
        Some(5) => Some(MsgTag::Reject),
        Some(6) => Some(MsgTag::Resume),
        Some(7) => Some(MsgTag::Ack),
        Some(8) => Some(MsgTag::Bye),
        Some(9) => Some(MsgTag::ItemError),
        Some(10) => Some(MsgTag::PackedTensor),
        _ => None,
    }
}

fn expect_tag(dec: &mut Decoder, want: MsgTag) -> Result<(), StreamError> {
    let got = dec.get_u8()?;
    if got != want as u8 {
        return Err(StreamError::Decode(format!(
            "expected message tag {}, got {got}",
            want as u8
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_stream_runtime::wire::{from_frame, to_frame};

    #[test]
    fn enc_tensor_roundtrip() {
        let msg = EncTensorMsg {
            seq: 42,
            shape: vec![2, 3],
            obfuscated: true,
            cts: vec![vec![1, 2, 3], vec![], vec![255; 64], vec![0], vec![9], vec![8, 7]],
        };
        let back: EncTensorMsg = from_frame(to_frame(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn plain_tensor_roundtrip() {
        let msg = PlainTensorMsg {
            seq: 7,
            shape: vec![4],
            values: vec![-1, 0, i128::MAX, i128::MIN],
        };
        let back: PlainTensorMsg = from_frame(to_frame(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn handshake_roundtrips() {
        let hello = HelloMsg {
            version: PROTOCOL_VERSION,
            pk_n: vec![0xab; 32],
            pk_fingerprint: 0xDEAD_BEEF_u64,
            topology: 77,
            n_stages: 4,
            factor: 1 << 13,
            pack_slot_bits: 32,
            pack_slots: 14,
            pack_budget: 4096,
        };
        let back: HelloMsg = from_frame(to_frame(&hello)).unwrap();
        assert_eq!(back, hello);

        let accept = AcceptMsg {
            version: 2,
            pk_fingerprint: 2,
            topology: 3,
            session: 99,
            pack_slot_bits: 32,
        };
        let back: AcceptMsg = from_frame(to_frame(&accept)).unwrap();
        assert_eq!(back, accept);

        let reject = RejectMsg::mismatch("topology mismatch");
        let back: RejectMsg = from_frame(to_frame(&reject)).unwrap();
        assert_eq!(back, reject);
        assert_eq!(back.code, RejectCode::Mismatch);
        assert_eq!(peek_tag(&to_frame(&reject)), Some(MsgTag::Reject));
    }

    #[test]
    fn busy_reject_roundtrips_with_backoff_hint() {
        let busy = RejectMsg::busy("at capacity (2 sessions)", 250);
        let back: RejectMsg = from_frame(to_frame(&busy)).unwrap();
        assert_eq!(back, busy);
        assert_eq!(back.code, RejectCode::Busy);
        assert_eq!(back.retry_after_ms, 250);
    }

    #[test]
    fn item_error_roundtrips_all_kinds() {
        for kind in [
            ItemErrorKind::DeadlineExpired,
            ItemErrorKind::Quarantined,
            ItemErrorKind::Shed,
            ItemErrorKind::PackedAbort,
            ItemErrorKind::CorruptReply,
        ] {
            let msg = ItemErrorMsg { seq: 17, kind, detail: "budget spent".into() };
            let frame = to_frame(&msg);
            assert_eq!(peek_tag(&frame), Some(MsgTag::ItemError));
            let back: ItemErrorMsg = from_frame(frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn resume_message_set_roundtrips() {
        let resume =
            ResumeMsg { version: PROTOCOL_VERSION, session: 7, items_done: 42, topology: 0xA1 };
        let back: ResumeMsg = from_frame(to_frame(&resume)).unwrap();
        assert_eq!(back, resume);
        assert_eq!(peek_tag(&to_frame(&resume)), Some(MsgTag::Resume));

        let ack = AckMsg { items_done: 13 };
        let back: AckMsg = from_frame(to_frame(&ack)).unwrap();
        assert_eq!(back, ack);
        assert_eq!(peek_tag(&to_frame(&ack)), Some(MsgTag::Ack));

        let bye = to_frame(&ByeMsg);
        assert_eq!(peek_tag(&bye), Some(MsgTag::Bye));
        let back: ByeMsg = from_frame(bye).unwrap();
        assert_eq!(back, ByeMsg);
    }

    #[test]
    fn packed_tensor_roundtrip() {
        let msg = PackedTensorMsg {
            seqs: vec![4, 5, 6],
            shape: vec![2, 2],
            obfuscated: true,
            slot_bits: 32,
            slots: 14,
            op_budget: 4096,
            weight: 257,
            cts: vec![vec![1, 2], vec![], vec![0xff; 48], vec![0]],
        };
        let frame = to_frame(&msg);
        assert_eq!(peek_tag(&frame), Some(MsgTag::PackedTensor));
        let back: PackedTensorMsg = from_frame(frame).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn tag_mismatch_rejected() {
        let enc = to_frame(&PlainTensorMsg { seq: 0, shape: vec![], values: vec![] });
        let res: Result<EncTensorMsg, _> = from_frame(enc);
        assert!(res.is_err());
    }

    #[test]
    fn peek_tag_identifies_frames() {
        let enc = to_frame(&EncTensorMsg { seq: 0, shape: vec![], obfuscated: false, cts: vec![] });
        assert_eq!(peek_tag(&enc), Some(MsgTag::EncTensor));
        let plain = to_frame(&PlainTensorMsg { seq: 0, shape: vec![], values: vec![] });
        assert_eq!(peek_tag(&plain), Some(MsgTag::PlainTensor));
        assert_eq!(peek_tag(&bytes::Bytes::from_static(&[99])), None);
    }

    #[test]
    fn truncated_bodies_decode_as_errors_not_panics() {
        // Every truncation point of every message type must surface as a
        // Decode error — never a panic or an allocation sized from the
        // missing bytes. This is the unit-level half of the wire fuzzer's
        // Truncate mutation class.
        fn assert_all_truncations<T>(frame: bytes::Bytes)
        where
            T: pp_stream_runtime::wire::WireDecode + std::fmt::Debug,
        {
            for cut in 0..frame.len() {
                let res: Result<T, _> = from_frame(frame.slice(..cut));
                assert!(res.is_err(), "truncation at {cut}/{} decoded", frame.len());
            }
        }
        assert_all_truncations::<HelloMsg>(to_frame(&HelloMsg {
            version: PROTOCOL_VERSION,
            pk_n: vec![0xab; 16],
            pk_fingerprint: 1,
            topology: 2,
            n_stages: 3,
            factor: 100,
            pack_slot_bits: 32,
            pack_slots: 4,
            pack_budget: 64,
        }));
        assert_all_truncations::<EncTensorMsg>(to_frame(&EncTensorMsg {
            seq: 9,
            shape: vec![2, 2],
            obfuscated: false,
            cts: vec![vec![1, 2, 3], vec![4]],
        }));
        assert_all_truncations::<PackedTensorMsg>(to_frame(&PackedTensorMsg {
            seqs: vec![1, 2],
            shape: vec![2],
            obfuscated: false,
            slot_bits: 32,
            slots: 4,
            op_budget: 64,
            weight: 1,
            cts: vec![vec![5, 6]],
        }));
    }

    #[test]
    fn hostile_ct_count_in_enc_tensor_is_rejected_without_allocation() {
        // Hand-craft an EncTensor frame whose ciphertext-count prefix
        // claims u32::MAX entries over a nearly empty body.
        use pp_stream_runtime::wire::Encoder;
        let mut enc = Encoder::new();
        enc.put_u8(MsgTag::EncTensor as u8);
        enc.put_u64(7); // seq
        enc.put_u32(0); // shape: zero dims
        enc.put_u8(0); // obfuscated: false
        enc.put_u32(u32::MAX); // hostile ciphertext count
        let res: Result<EncTensorMsg, _> = from_frame(enc.finish());
        assert!(res.is_err());
    }
}
