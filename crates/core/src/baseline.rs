//! The centralized baselines of Exp#2 (paper Fig. 8):
//!
//! * **PlainBase** — plaintext inference on a single server, no privacy.
//! * **CipherBase** — the full hybrid privacy protocol (encrypt → linear
//!   homomorphic ops → obfuscated non-linear rounds → decrypt) executed
//!   sequentially on a single server with one thread: privacy without
//!   the distributed stream-processing architecture.
//!
//! Both reuse the exact stage executors of [`crate::protocol`], so
//! CipherBase's outputs are bit-identical to the pipelined system's.

use crate::encapsulate::{encapsulate, StageRole};
use crate::messages::PlainTensorMsg;
use crate::protocol::{EncryptStage, LinearStage, NonLinearStage, PartitionMode, PermStore};
use crate::CoreError;
use pp_nn::scaling::ScaledModel;
use pp_nn::Model;
use pp_paillier::Keypair;
use pp_stream_runtime::WorkerPool;
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Per-request latency.
    pub latencies: Vec<Duration>,
    /// Total wall time.
    pub total: Duration,
}

impl BaselineReport {
    /// Mean per-request latency.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }
}

/// PlainBase: centralized plaintext inference.
pub fn plain_base(
    model: &Model,
    inputs: &[Tensor<f64>],
) -> Result<(Vec<usize>, BaselineReport), CoreError> {
    let start = Instant::now();
    let mut classes = Vec::with_capacity(inputs.len());
    let mut latencies = Vec::with_capacity(inputs.len());
    for input in inputs {
        let t0 = Instant::now();
        classes.push(model.classify(input)?);
        latencies.push(t0.elapsed());
    }
    Ok((classes, BaselineReport { latencies, total: start.elapsed() }))
}

/// CipherBase: the hybrid privacy protocol on one server, one thread,
/// requests processed strictly one after another.
pub fn cipher_base(
    scaled: &ScaledModel,
    key_bits: usize,
    seed: u64,
    inputs: &[Tensor<f64>],
) -> Result<(Vec<usize>, BaselineReport), CoreError> {
    let stages = encapsulate(scaled)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let keypair = Keypair::generate(key_bits, &mut rng);
    let pool = WorkerPool::new(1);
    let perms = Arc::new(PermStore::default());
    let intra = Arc::new(AtomicU64::new(0));
    let n_linear = stages.iter().filter(|s| s.role == StageRole::Linear).count();

    let encrypt = EncryptStage { pk: keypair.public(), seed, rand_pool: None };
    let mut linear_execs = Vec::new();
    let mut nonlinear_execs = Vec::new();
    let mut linear_idx = 0usize;
    for (i, stage) in stages.iter().enumerate() {
        match stage.role {
            StageRole::Linear => {
                linear_execs.push(LinearStage {
                    pk: keypair.public(),
                    stage: stage.clone(),
                    linear_idx,
                    is_first: linear_idx == 0,
                    is_last: linear_idx == n_linear - 1,
                    perms: Arc::clone(&perms),
                    mode: PartitionMode::Partitioned,
                    seed: seed ^ (i as u64) << 8,
                    intra_bytes: Arc::clone(&intra),
                });
                linear_idx += 1;
            }
            StageRole::NonLinear => nonlinear_execs.push(NonLinearStage {
                keypair: keypair.clone(),
                stage: stage.clone(),
                factor: scaled.factor(),
                is_last: i == stages.len() - 1,
                seed: seed ^ 0xBEEF ^ (i as u64) << 8,
            }),
        }
    }

    let start = Instant::now();
    let mut classes = Vec::with_capacity(inputs.len());
    let mut latencies = Vec::with_capacity(inputs.len());
    for (seq, input) in inputs.iter().enumerate() {
        let t0 = Instant::now();
        let scaled_in = scaled.scale_input(input);
        let plain = PlainTensorMsg {
            seq: seq as u64,
            shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
            values: scaled_in.data().iter().map(|&v| v as i128).collect(),
        };
        let mut msg = encrypt.encrypt(plain, &pool);
        let (mut li, mut ni) = (0usize, 0usize);
        let mut result: Option<PlainTensorMsg> = None;
        for stage in &stages {
            match stage.role {
                StageRole::Linear => {
                    msg = linear_execs[li]
                        .execute(msg, &pool)
                        .map_err(|e| CoreError::Runtime(e.to_string()))?;
                    li += 1;
                }
                StageRole::NonLinear => {
                    let exec = &nonlinear_execs[ni];
                    if exec.is_last {
                        result = Some(
                            exec.execute_final(msg.clone(), &pool)
                                .map_err(|e| CoreError::Runtime(e.to_string()))?,
                        );
                    } else {
                        msg = exec
                            .execute(msg, &pool)
                            .map_err(|e| CoreError::Runtime(e.to_string()))?;
                    }
                    ni += 1;
                }
            }
        }
        let result = result.expect("model ends non-linear");
        let out: Vec<i64> = result
            .values
            .iter()
            .map(|&v| i64::try_from(v).expect("final logits fit i64"))
            .collect();
        classes.push(pp_nn::activation::argmax_i64(&Tensor::from_flat(out)));
        latencies.push(t0.elapsed());
    }
    Ok((classes, BaselineReport { latencies, total: start.elapsed() }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::zoo;

    #[test]
    fn plain_base_classifies() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = zoo::mlp("m", &[3, 4, 2], &mut rng).unwrap();
        let inputs = vec![
            Tensor::from_flat(vec![0.5, -0.5, 0.1]),
            Tensor::from_flat(vec![-0.9, 0.4, 0.2]),
        ];
        let (classes, report) = plain_base(&model, &inputs).unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(report.latencies.len(), 2);
        for (input, &c) in inputs.iter().zip(&classes) {
            assert_eq!(c, model.classify(input).unwrap());
        }
    }

    #[test]
    fn cipher_base_matches_plain_classification() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = zoo::mlp("m", &[4, 5, 3], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        let inputs = vec![
            Tensor::from_flat(vec![0.3, -0.2, 0.8, -0.5]),
            Tensor::from_flat(vec![0.0, 0.9, -0.9, 0.1]),
        ];
        let (classes, report) = cipher_base(&scaled, 128, 7, &inputs).unwrap();
        for (input, &c) in inputs.iter().zip(&classes) {
            assert_eq!(c, model.classify(input).unwrap());
        }
        // Privacy costs time: CipherBase is slower than PlainBase.
        let (_, plain_report) = plain_base(&model, &inputs).unwrap();
        assert!(report.mean_latency() > plain_report.mean_latency());
    }
}
