//! Batch-packed execution: a whole batch of requests rides in the slots
//! of each ciphertext.
//!
//! The layout is *batch-major*: slot `j` of packed ciphertext `i` holds
//! activation `i` of request `j` (DESIGN.md §8). One homomorphic linear
//! pass then serves the entire batch — the Straus multi-exponentiation
//! in [`PackedMontInputs`] computes every request's dot product at once,
//! amortizing the `O(key_bits)` squarings that dominate unpacked cost.
//!
//! The module supplies the four protocol legs of the packed round trip:
//!
//! * [`pack_plain_batch`] — data provider: gather a batch of scaled
//!   plaintext tensors into one [`PackedTensorMsg`] (encrypt once per
//!   tensor *position*, not per request);
//! * [`execute_packed_linear`] — model provider: the same inverse
//!   obfuscation → linear ops → obfuscation round as
//!   [`LinearStage::execute`], on packed ciphertexts;
//! * [`repack_nonlinear`] — data provider: decrypt each position, apply
//!   the stage's element-wise non-linear ops to the slot values, and
//!   re-encrypt at weight 1;
//! * [`unpack_final`] — data provider: scatter the final decrypted
//!   positions back into one [`PlainTensorMsg`] per request.
//!
//! Because every slot sees exactly the arithmetic the unpacked protocol
//! would apply to that request (same weights, same rescales, same
//! rounding on the same `i128` values), a packed run is bit-identical to
//! the per-request baseline.

use crate::encapsulate::{op_output_shape, MergedStage, StageRole};
use crate::messages::{PackedTensorMsg, PlainTensorMsg};
use crate::protocol::{mix, shape_to_wire, LinearStage, NonLinearStage};
use pp_nn::scaling::ScaledOp;
use pp_obfuscate::Permutation;
use pp_paillier::packing::{PackedCiphertext, PackedMontInputs, PackingSpec};
use pp_paillier::{Ciphertext, PaillierError, PublicKey, RandomnessPool};
use pp_stream_runtime::pool::WorkerPool;
use pp_stream_runtime::StreamError;
use pp_tensor::ops::{affine, conv2d, fully_connected, sum_pool2d};
use pp_tensor::{LinearAlgebra, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Packed rounds share the per-connection [`crate::protocol::PermStore`]
/// with unpacked requests. A batch's permutations are stored under its
/// first member's sequence number with this bit set, which cannot
/// collide with any per-request key: `u64::MAX / 2` requests would have
/// to be in flight first.
pub(crate) const PACKED_PERM_BIT: u64 = 1 << 63;

/// The [`LinearAlgebra`] back-end over batch-packed ciphertexts — the
/// packed sibling of [`crate::encctx::EncCtx`]. The same layer kernels
/// (`conv2d`, `fully_connected`, …) run unchanged; every element-level
/// operation transparently applies to all `used` slots at once.
///
/// Operations panic when the packing invariant would break (mismatched
/// layouts, op-budget overflow). Sessions size the budget up front with
/// [`required_budget`], so a panic here means a negotiation bug; the
/// serving loop backstops it with `catch_unwind` and aborts the batch
/// instead of the connection.
pub struct PackedEncCtx<'a> {
    pub pk: &'a PublicKey,
    pub spec: PackingSpec,
    /// Active slots (= batch size) in every operand.
    pub used: usize,
}

impl LinearAlgebra for PackedEncCtx<'_> {
    type Elem = PackedCiphertext;
    type Weight = i64;

    fn mul(&self, w: i64, x: &PackedCiphertext) -> PackedCiphertext {
        x.mul_signed(self.pk, w).expect("packed scalar multiply within op budget")
    }

    fn add(&self, a: &PackedCiphertext, b: &PackedCiphertext) -> PackedCiphertext {
        a.add(self.pk, b).expect("packed add on matching layouts within op budget")
    }

    fn constant(&self, w: i64) -> PackedCiphertext {
        PackedCiphertext::constant(self.pk, self.spec, self.used, w)
            .expect("packed constant within value bound")
    }

    fn dot(
        &self,
        elems: &[PackedCiphertext],
        terms: &[(usize, i64)],
        bias: i64,
    ) -> PackedCiphertext {
        PackedMontInputs::new(self.pk, elems)
            .expect("packed dot inputs share one layout")
            .dot_i64(terms, bias)
            .expect("packed dot within op budget")
    }

    fn dot_rows(
        &self,
        elems: &[PackedCiphertext],
        rows: &[pp_tensor::DotRow<i64>],
    ) -> Vec<PackedCiphertext> {
        let inputs = PackedMontInputs::new(self.pk, elems)
            .expect("packed dot inputs share one layout");
        rows.iter()
            .map(|r| inputs.dot_i64(&r.terms, r.bias).expect("packed dot within op budget"))
            .collect()
    }
}

/// The smallest op budget `W` that keeps every linear stage of `stages`
/// within the packed weight invariant, assuming weight-1 inputs per
/// stage (non-linear stages re-encrypt fresh between linear rounds).
///
/// Per op the simulation tracks the worst-case accumulated weight `u`
/// of any output element (bias constants count one unit, dot products
/// `1 + Σ|wᵢ|·u`, sum-pools `u·window²`), saturating on overflow — so
/// the result can only *over*-provision, never under. Conv2d uses the
/// full-kernel mass per output channel; zero-padded edge taps only
/// shrink the true weight.
pub fn required_budget(stages: &[MergedStage]) -> u64 {
    let mut worst = 1u64;
    for stage in stages.iter().filter(|s| s.role == StageRole::Linear) {
        let mut u = 1u64;
        for op in &stage.ops {
            u = match op {
                ScaledOp::Dense { weights, .. } => {
                    let in_features = weights.shape().dims()[1].max(1);
                    weights
                        .data()
                        .chunks(in_features)
                        .map(|row| abs_mass(row, u))
                        .max()
                        .unwrap_or(1)
                }
                ScaledOp::Conv2d { spec, weights, .. } => {
                    let per_oc = weights.data().len() / spec.out_channels.max(1);
                    weights
                        .data()
                        .chunks(per_oc.max(1))
                        .map(|taps| abs_mass(taps, u))
                        .max()
                        .unwrap_or(1)
                }
                ScaledOp::Affine { scale, .. } => scale
                    .iter()
                    .map(|s| 1u64.saturating_add(s.unsigned_abs().saturating_mul(u)))
                    .max()
                    .unwrap_or(u),
                ScaledOp::ScaleMul { alpha } => alpha.unsigned_abs().saturating_mul(u).max(1),
                ScaledOp::SumPool { window, .. } => {
                    let taps = (*window as u64).saturating_mul(*window as u64);
                    u.saturating_mul(taps).max(1)
                }
                ScaledOp::Flatten => u,
                // Non-linear ops never appear in linear stages
                // (encapsulation guarantees it); they reset u anyway.
                _ => u,
            };
            worst = worst.max(u);
        }
    }
    worst
}

/// `1 + Σ|wᵢ|·input_weight` — one dot row's packed weight, saturating.
fn abs_mass(weights: &[i64], input_weight: u64) -> u64 {
    weights.iter().fold(1u64, |acc, &w| {
        acc.saturating_add(w.unsigned_abs().saturating_mul(input_weight))
    })
}

/// The packing layout a wire message claims to use.
pub(crate) fn msg_spec(msg: &PackedTensorMsg) -> PackingSpec {
    PackingSpec {
        slot_bits: msg.slot_bits as usize,
        slots: msg.slots as usize,
        op_budget: msg.op_budget,
    }
}

/// Revalidates and reassembles every packed ciphertext of a wire
/// message ([`PackedCiphertext::from_parts`] checks layout, key
/// capacity, and budget).
fn reassemble(
    pk: &PublicKey,
    msg: &PackedTensorMsg,
) -> Result<Vec<PackedCiphertext>, PaillierError> {
    let spec = msg_spec(msg);
    msg.cts
        .iter()
        .map(|b| {
            PackedCiphertext::from_parts(pk, Ciphertext::from_bytes(b), spec, msg.seqs.len(), msg.weight)
        })
        .collect()
}

/// Data provider: packs one batch of scaled plaintext tensors into a
/// single [`PackedTensorMsg`] at weight 1. All members must share one
/// shape; member `j`'s activations land in slot `j` of every ciphertext.
/// Blinding factors come from the randomness pool (misses counted), the
/// derivation seed follows the unpacked [`crate::protocol::EncryptStage`]
/// convention keyed by the first member's sequence number.
pub(crate) fn pack_plain_batch(
    pk: &PublicKey,
    spec: PackingSpec,
    plains: &[PlainTensorMsg],
    rand_pool: &mut RandomnessPool,
    seed: u64,
) -> Result<PackedTensorMsg, PaillierError> {
    let first = plains
        .first()
        .ok_or_else(|| PaillierError::InvalidPacking("empty packed batch".into()))?;
    if plains.len() > spec.slots {
        return Err(PaillierError::InvalidPacking(format!(
            "batch of {} exceeds {} slots",
            plains.len(),
            spec.slots
        )));
    }
    let n = first.values.len();
    if plains.iter().any(|p| p.shape != first.shape || p.values.len() != n) {
        return Err(PaillierError::PackingMismatch);
    }
    let _ = pk;
    let mut rng = StdRng::seed_from_u64(mix(seed ^ first.seq.wrapping_mul(0x517c_c1b7)));
    let mut slots = vec![0i64; plains.len()];
    let mut cts = Vec::with_capacity(n);
    for a in 0..n {
        for (j, p) in plains.iter().enumerate() {
            slots[j] =
                i64::try_from(p.values[a]).map_err(|_| PaillierError::MessageOutOfRange)?;
        }
        let packed = rand_pool.encrypt_packed(spec, &slots, &mut rng)?;
        cts.push(packed.ct.to_bytes());
    }
    Ok(PackedTensorMsg {
        seqs: plains.iter().map(|p| p.seq).collect(),
        shape: first.shape.clone(),
        obfuscated: false,
        slot_bits: spec.slot_bits as u32,
        slots: spec.slots as u32,
        op_budget: spec.op_budget,
        weight: 1,
        cts,
    })
}

/// Model provider: one packed linear round — inverse obfuscation, the
/// stage's homomorphic linear ops over all slots at once, weight
/// equalization (so the wire message carries a single `weight`), and
/// obfuscation (skipped by the last linear stage, Step 3.4).
///
/// Permutations are stored under the batch's [`PACKED_PERM_BIT`] key.
/// Errors are returned (not panicked) wherever the input could be at
/// fault, so the server can abort the batch and keep the connection.
pub(crate) fn execute_packed_linear(
    exec: &LinearStage,
    msg: PackedTensorMsg,
) -> Result<PackedTensorMsg, StreamError> {
    assert_eq!(exec.stage.role, StageRole::Linear, "misconfigured stage");
    if msg.seqs.is_empty() {
        return Err(StreamError::Stage("empty packed batch".into()));
    }
    let spec = msg_spec(&msg);
    let pk = &exec.pk;
    let packed_key = msg.seqs[0] | PACKED_PERM_BIT;
    let mut cts = reassemble(pk, &msg)
        .map_err(|e| StreamError::Stage(format!("packed decode: {e}")))?;

    // Inverse obfuscation (Steps 2.5 / 3.2), batch-wide.
    if !exec.is_first {
        let perm = exec.perms.take(packed_key, exec.linear_idx - 1).ok_or_else(|| {
            StreamError::Stage(format!(
                "linear stage {} has no stored permutation for packed batch {}",
                exec.linear_idx, msg.seqs[0]
            ))
        })?;
        cts = perm
            .invert(&cts)
            .map_err(|e| StreamError::Stage(format!("inverse obfuscation failed: {e}")))?;
    }

    // Homomorphic linear ops: the whole-tensor kernels over the packed
    // back-end. One pass computes all `used` requests.
    let ctx = PackedEncCtx { pk, spec, used: msg.seqs.len() };
    let mut shape = exec.stage.input_shape.clone();
    let mut tensor = Tensor::from_vec(shape.clone(), cts)
        .map_err(|e| StreamError::Stage(format!("packed input shape: {e}")))?;
    for op in &exec.stage.ops {
        let out_shape = op_output_shape(op, &shape)
            .map_err(|e| StreamError::Stage(format!("packed op shape: {e}")))?;
        tensor = run_packed_op(&ctx, op, tensor)
            .map_err(|e| StreamError::Stage(format!("packed linear op: {e}")))?;
        shape = out_shape;
    }

    // Equalize weights: sparse rows (padded conv edges, zero weights)
    // accumulate less offset than dense ones; raising everything to the
    // max lets the wire format carry one weight for the whole tensor.
    let mut out = tensor.into_data();
    let target = out.iter().map(PackedCiphertext::weight).max().unwrap_or(1).max(1);
    for c in out.iter_mut() {
        *c = c
            .raise_weight(pk, target)
            .map_err(|e| StreamError::Stage(format!("packed weight equalization: {e}")))?;
    }

    // Obfuscation (Steps 1.4 / 2.7), skipped in the last round (3.4).
    let obfuscated = if exec.is_last {
        false
    } else {
        let mut rng = StdRng::seed_from_u64(mix(exec.seed ^ mix(packed_key) ^ exec.linear_idx as u64));
        let perm = Permutation::random(out.len(), &mut rng);
        out = perm.apply(&out).expect("lengths match");
        exec.perms.put(packed_key, exec.linear_idx, perm);
        true
    };

    Ok(PackedTensorMsg {
        seqs: msg.seqs,
        shape: shape_to_wire(&shape),
        obfuscated,
        slot_bits: spec.slot_bits as u32,
        slots: spec.slots as u32,
        op_budget: spec.op_budget,
        weight: target,
        cts: out.iter().map(|c| c.ct.to_bytes()).collect(),
    })
}

/// One linear op on a packed tensor, whole-tensor (packing already
/// parallelizes over the batch; per-element worker dispatch would
/// re-serialize full-width ciphertexts for no win).
fn run_packed_op(
    ctx: &PackedEncCtx<'_>,
    op: &ScaledOp,
    input: Tensor<PackedCiphertext>,
) -> Result<Tensor<PackedCiphertext>, TensorError> {
    match op {
        ScaledOp::Flatten => Ok(input.flatten()),
        ScaledOp::ScaleMul { alpha } => {
            let shape = input.shape().clone();
            let data = input.data().iter().map(|x| ctx.mul(*alpha, x)).collect();
            Tensor::from_vec(shape, data)
        }
        ScaledOp::Affine { scale, shift } => affine(ctx, &input, scale, shift),
        ScaledOp::Dense { weights, bias } => fully_connected(ctx, &input, weights, bias),
        ScaledOp::Conv2d { spec, weights, bias } => conv2d(ctx, &input, weights, bias, spec),
        ScaledOp::SumPool { window, stride } => sum_pool2d(ctx, &input, *window, *stride),
        other => unreachable!("op {other:?} in packed linear stage"),
    }
}

/// Data provider, mid-pipeline: decrypt every packed position, apply the
/// stage's element-wise non-linear ops to the slot values (the identical
/// `i128` math as [`NonLinearStage::apply_ops`] on the unpacked path),
/// and re-encrypt at weight 1 for the next linear stage.
pub(crate) fn repack_nonlinear(
    nl: &NonLinearStage,
    msg: PackedTensorMsg,
    workers: &WorkerPool,
) -> Result<PackedTensorMsg, PaillierError> {
    if msg.seqs.is_empty() {
        return Err(PaillierError::InvalidPacking("empty packed batch".into()));
    }
    let spec = msg_spec(&msg);
    let pk = nl.keypair.public();
    let sk = nl.keypair.private();
    let used = msg.seqs.len();
    let packed_key = msg.seqs[0] | PACKED_PERM_BIT;
    let mut rng = StdRng::seed_from_u64(mix(nl.seed ^ mix(packed_key).rotate_left(17)));
    let mut cts = Vec::with_capacity(msg.cts.len());
    for b in &msg.cts {
        let packed =
            PackedCiphertext::from_parts(&pk, Ciphertext::from_bytes(b), spec, used, msg.weight)?;
        let mut vals: Vec<i128> =
            packed.decrypt_parallel(&sk, workers)?.iter().map(|&v| v as i128).collect();
        nl.apply_ops(&mut vals);
        let out: Vec<i64> = vals
            .iter()
            .map(|&v| i64::try_from(v).map_err(|_| PaillierError::MessageOutOfRange))
            .collect::<Result<_, _>>()?;
        let repacked = PackedCiphertext::encrypt(&pk, spec, &out, &mut rng)?;
        cts.push(repacked.ct.to_bytes());
    }
    Ok(PackedTensorMsg {
        seqs: msg.seqs,
        shape: msg.shape,
        obfuscated: msg.obfuscated,
        slot_bits: spec.slot_bits as u32,
        slots: spec.slots as u32,
        op_budget: spec.op_budget,
        weight: 1,
        cts,
    })
}

/// Data provider, final round: decrypt every position, apply the final
/// stage's ops, and scatter slot `j` of each position into request `j`'s
/// [`PlainTensorMsg`] (Steps 3.5–3.7, batch-wide).
pub(crate) fn unpack_final(
    nl: &NonLinearStage,
    msg: PackedTensorMsg,
    workers: &WorkerPool,
) -> Result<Vec<PlainTensorMsg>, PaillierError> {
    if msg.seqs.is_empty() {
        return Err(PaillierError::InvalidPacking("empty packed batch".into()));
    }
    if msg.obfuscated {
        return Err(PaillierError::InvalidPacking(
            "final packed round arrived obfuscated (Step 3.4 violation)".into(),
        ));
    }
    if msg.cts.is_empty() {
        return Err(PaillierError::InvalidPacking(
            "packed batch without ciphertexts".into(),
        ));
    }
    let spec = msg_spec(&msg);
    let pk = nl.keypair.public();
    let sk = nl.keypair.private();
    let used = msg.seqs.len();
    // The scatter buffers are sized `seqs × cts` — both attacker-chosen —
    // so allocation waits until the first `from_parts` has bounded `used`
    // by the slot count and the slot count by the key capacity.
    let mut per_item: Vec<Vec<i128>> = Vec::new();
    for b in &msg.cts {
        let packed =
            PackedCiphertext::from_parts(&pk, Ciphertext::from_bytes(b), spec, used, msg.weight)?;
        let mut vals: Vec<i128> =
            packed.decrypt_parallel(&sk, workers)?.iter().map(|&v| v as i128).collect();
        nl.apply_ops(&mut vals);
        if per_item.is_empty() {
            per_item = vec![Vec::with_capacity(msg.cts.len()); used];
        }
        for (item, &v) in per_item.iter_mut().zip(vals.iter()) {
            item.push(v);
        }
    }
    Ok(msg
        .seqs
        .iter()
        .zip(per_item)
        .map(|(&seq, values)| PlainTensorMsg { seq, shape: msg.shape.clone(), values })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PartitionMode, PermStore};
    use pp_tensor::ops::Conv2dSpec;
    use pp_paillier::Keypair;
    use pp_stream_runtime::WorkerPool;
    use pp_tensor::ops as plain_ops;
    use pp_tensor::{PlainI64, Shape};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn keypair(seed: u64) -> Keypair {
        let mut rng = StdRng::seed_from_u64(seed);
        Keypair::generate(256, &mut rng)
    }

    fn linear_exec(kp: &Keypair, stage: MergedStage, is_last: bool) -> LinearStage {
        LinearStage {
            pk: kp.public(),
            stage,
            linear_idx: 0,
            is_first: true,
            is_last,
            perms: Arc::new(PermStore::default()),
            mode: PartitionMode::Partitioned,
            seed: 7,
            intra_bytes: Arc::new(AtomicU64::new(0)),
        }
    }

    #[test]
    fn required_budget_tracks_abs_weight_mass() {
        let dense = |rows: Vec<Vec<i64>>| {
            let out = rows.len();
            let inn = rows[0].len();
            ScaledOp::Dense {
                weights: Tensor::from_vec(vec![out, inn], rows.concat()).unwrap(),
                bias: vec![0; out],
            }
        };
        let stage = |ops: Vec<ScaledOp>, n: usize| MergedStage {
            role: StageRole::Linear,
            ops,
            input_shape: Shape::vector(n),
            output_shape: Shape::vector(n),
        };

        // One dense: worst row is 1 + |3| + |-4| = 8.
        let s = stage(vec![dense(vec![vec![3, -4], vec![1, 1]])], 2);
        assert_eq!(required_budget(std::slice::from_ref(&s)), 8);

        // ScaleMul then dense compounds: u = 3, then 1 + (2+2)·3 = 13.
        let s2 = stage(
            vec![ScaledOp::ScaleMul { alpha: -3 }, dense(vec![vec![2, -2]])],
            2,
        );
        assert_eq!(required_budget(&[s2]), 13);

        // SumPool multiplies by window²: u = 2·2² = 8 (no bias term).
        let s3 = MergedStage {
            role: StageRole::Linear,
            ops: vec![
                ScaledOp::ScaleMul { alpha: 2 },
                ScaledOp::SumPool { window: 2, stride: 2 },
            ],
            input_shape: Shape::new(vec![1, 4, 4]),
            output_shape: Shape::new(vec![1, 2, 2]),
        };
        assert_eq!(required_budget(&[s3]), 8);

        // Non-linear stages are ignored; budgets never drop below 1.
        let nl = MergedStage {
            role: StageRole::NonLinear,
            ops: vec![ScaledOp::ReLU { rescale: 1 }],
            input_shape: Shape::vector(2),
            output_shape: Shape::vector(2),
        };
        assert_eq!(required_budget(&[nl]), 1);
        assert_eq!(required_budget(&[]), 1);
    }

    #[test]
    fn required_budget_bounds_actual_packed_weights() {
        // The simulated budget must dominate the weight the kernels
        // actually accumulate, conv padding included.
        let kp = keypair(31);
        let conv = ScaledOp::Conv2d {
            spec: Conv2dSpec {
                in_channels: 1,
                out_channels: 2,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            weights: Tensor::from_vec(
                vec![2, 1, 3, 3],
                (0..18).map(|i| (i as i64 % 5) - 2).collect(),
            )
            .unwrap(),
            bias: vec![1, -1],
        };
        let stage = MergedStage {
            role: StageRole::Linear,
            ops: vec![conv],
            input_shape: Shape::new(vec![1, 4, 4]),
            output_shape: Shape::new(vec![2, 4, 4]),
        };
        let budget = required_budget(std::slice::from_ref(&stage));
        let exec = linear_exec(&kp, stage, true);

        let spec = PackingSpec::for_key(&kp.public(), 40).unwrap().with_budget(budget);
        spec.check().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let plains: Vec<PlainTensorMsg> = (0..3)
            .map(|j| PlainTensorMsg {
                seq: j,
                shape: vec![1, 4, 4],
                values: (0..16).map(|i| ((i as i128 * 7 + j as i128) % 9) - 4).collect(),
            })
            .collect();
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(16, &mut rng);
        let msg = pack_plain_batch(&kp.public(), spec, &plains, &mut pool, 3).unwrap();
        let out = execute_packed_linear(&exec, msg).unwrap();
        assert!(out.weight <= budget, "weight {} over budget {budget}", out.weight);
    }

    #[test]
    fn packed_linear_round_matches_scaled_reference_per_item() {
        let kp = keypair(32);
        let weights = Tensor::from_vec(vec![2, 3], vec![2, -1, 3, 0, 4, -2]).unwrap();
        let bias = vec![5, -7];
        let stage = MergedStage {
            role: StageRole::Linear,
            ops: vec![
                ScaledOp::ScaleMul { alpha: 2 },
                ScaledOp::Dense { weights: weights.clone(), bias: bias.clone() },
            ],
            input_shape: Shape::vector(3),
            output_shape: Shape::vector(2),
        };
        let budget = required_budget(std::slice::from_ref(&stage));
        let exec = linear_exec(&kp, stage, true);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap().with_budget(budget);

        let batch: Vec<Vec<i64>> = vec![vec![3, -2, 5], vec![-4, 0, 1], vec![7, 7, -7]];
        let plains: Vec<PlainTensorMsg> = batch
            .iter()
            .enumerate()
            .map(|(j, v)| PlainTensorMsg {
                seq: j as u64,
                shape: vec![3],
                values: v.iter().map(|&x| x as i128).collect(),
            })
            .collect();
        let mut pool = RandomnessPool::new(kp.public());
        let msg = pack_plain_batch(&kp.public(), spec, &plains, &mut pool, 11).unwrap();
        assert_eq!(msg.weight, 1);
        assert_eq!(msg.seqs, vec![0, 1, 2]);

        let out = execute_packed_linear(&exec, msg).unwrap();
        assert!(!out.obfuscated, "last linear stage sends in the clear ordering");
        assert_eq!(out.shape, vec![2]);

        // Decrypt each output position; slot j must equal the plain
        // scaled-integer reference for batch item j.
        let out_spec = msg_spec(&out);
        for (pos, b) in out.cts.iter().enumerate() {
            let packed = PackedCiphertext::from_parts(
                &kp.public(),
                Ciphertext::from_bytes(b),
                out_spec,
                out.seqs.len(),
                out.weight,
            )
            .unwrap();
            let slots = packed.decrypt(&kp.private()).unwrap();
            for (j, item) in batch.iter().enumerate() {
                let scaled: Vec<i64> = item.iter().map(|&x| 2 * x).collect();
                let want = plain_ops::fully_connected(
                    &PlainI64,
                    &Tensor::from_flat(scaled),
                    &weights,
                    &bias,
                )
                .unwrap();
                assert_eq!(slots[j], want.data()[pos], "item {j} position {pos}");
            }
        }
    }

    #[test]
    fn packed_round_trip_obfuscation_and_nonlinear_matches_unpacked() {
        // Two linear stages with a ReLU between them: the packed path
        // must invert the stored permutation and produce exactly the
        // per-item unpacked pipeline's final values.
        let kp = keypair(33);
        let w1 = Tensor::from_vec(vec![4, 2], vec![1, -2, 3, 1, -1, 2, 2, 2]).unwrap();
        let w2 = Tensor::from_vec(vec![2, 4], vec![1, 1, -1, 0, 2, -2, 1, 1]).unwrap();
        let lin1 = MergedStage {
            role: StageRole::Linear,
            ops: vec![ScaledOp::Dense { weights: w1.clone(), bias: vec![1, 0, -1, 2] }],
            input_shape: Shape::vector(2),
            output_shape: Shape::vector(4),
        };
        let relu = MergedStage {
            role: StageRole::NonLinear,
            ops: vec![ScaledOp::ReLU { rescale: 1 }],
            input_shape: Shape::vector(4),
            output_shape: Shape::vector(4),
        };
        let lin2 = MergedStage {
            role: StageRole::Linear,
            ops: vec![ScaledOp::Dense { weights: w2.clone(), bias: vec![0, 3] }],
            input_shape: Shape::vector(4),
            output_shape: Shape::vector(2),
        };
        let final_sm = MergedStage {
            role: StageRole::NonLinear,
            ops: vec![ScaledOp::SoftMax { rescale: 1 }],
            input_shape: Shape::vector(2),
            output_shape: Shape::vector(2),
        };
        let stages = [lin1.clone(), relu.clone(), lin2.clone(), final_sm.clone()];
        let budget = required_budget(&stages);

        let perms = Arc::new(PermStore::default());
        let exec1 = LinearStage {
            pk: kp.public(),
            stage: lin1,
            linear_idx: 0,
            is_first: true,
            is_last: false,
            perms: Arc::clone(&perms),
            mode: PartitionMode::Partitioned,
            seed: 21,
            intra_bytes: Arc::new(AtomicU64::new(0)),
        };
        let exec2 = LinearStage {
            pk: kp.public(),
            stage: lin2,
            linear_idx: 1,
            is_first: false,
            is_last: true,
            perms: Arc::clone(&perms),
            mode: PartitionMode::Partitioned,
            seed: 22,
            intra_bytes: Arc::new(AtomicU64::new(0)),
        };
        let nl_mid = NonLinearStage { keypair: kp.clone(), stage: relu, factor: 100, is_last: false, seed: 23 };
        let nl_last = NonLinearStage { keypair: kp.clone(), stage: final_sm, factor: 100, is_last: true, seed: 24 };

        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap().with_budget(budget);
        let batch: Vec<Vec<i64>> = vec![vec![5, -3], vec![-2, 9], vec![0, 4], vec![6, 6]];
        let plains: Vec<PlainTensorMsg> = batch
            .iter()
            .enumerate()
            .map(|(j, v)| PlainTensorMsg {
                seq: 10 + j as u64,
                shape: vec![2],
                values: v.iter().map(|&x| x as i128).collect(),
            })
            .collect();
        let mut pool = RandomnessPool::new(kp.public());
        let msg = pack_plain_batch(&kp.public(), spec, &plains, &mut pool, 9).unwrap();

        let wp = WorkerPool::new(2);
        let msg = execute_packed_linear(&exec1, msg).unwrap();
        assert!(msg.obfuscated, "mid-pipeline linear output is obfuscated");
        let msg = repack_nonlinear(&nl_mid, msg, &wp).unwrap();
        assert_eq!(msg.weight, 1, "re-encryption resets the op weight");
        let msg = execute_packed_linear(&exec2, msg).unwrap();
        let outs = unpack_final(&nl_last, msg, &wp).unwrap();

        // Unpacked per-item reference through the real stage executors.
        let ref_perms = Arc::new(PermStore::default());
        let r1 = LinearStage { perms: Arc::clone(&ref_perms), ..replace_perms(&exec1) };
        let r2 = LinearStage { perms: Arc::clone(&ref_perms), ..replace_perms(&exec2) };
        for (j, item) in batch.iter().enumerate() {
            let seq = 10 + j as u64;
            let mut rng = StdRng::seed_from_u64(77 + j as u64);
            let cts: Vec<Vec<u8>> = item
                .iter()
                .map(|&v| kp.public().encrypt_i64(v, &mut rng).to_bytes())
                .collect();
            let enc = crate::messages::EncTensorMsg {
                seq,
                shape: vec![2],
                obfuscated: false,
                cts,
            };
            let enc = r1.execute(enc, &wp).unwrap();
            let enc = nl_mid.execute(enc, &wp).unwrap();
            let enc = r2.execute(enc, &wp).unwrap();
            let plain = nl_last.execute_final(enc, &wp).unwrap();
            assert_eq!(outs[j].seq, seq);
            assert_eq!(outs[j].shape, plain.shape);
            assert_eq!(outs[j].values, plain.values, "item {j} diverges from unpacked");
        }
    }

    /// Clone a LinearStage but let the caller swap the perm store.
    fn replace_perms(l: &LinearStage) -> LinearStage {
        LinearStage {
            pk: l.pk.clone(),
            stage: l.stage.clone(),
            linear_idx: l.linear_idx,
            is_first: l.is_first,
            is_last: l.is_last,
            perms: Arc::new(PermStore::default()),
            mode: l.mode,
            seed: l.seed,
            intra_bytes: Arc::new(AtomicU64::new(0)),
        }
    }

    #[test]
    fn pack_plain_batch_validates_members() {
        let kp = keypair(34);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap();
        let mut pool = RandomnessPool::new(kp.public());
        let a = PlainTensorMsg { seq: 0, shape: vec![2], values: vec![1, 2] };
        let b = PlainTensorMsg { seq: 1, shape: vec![3], values: vec![1, 2, 3] };
        assert!(matches!(
            pack_plain_batch(&kp.public(), spec, &[a.clone(), b], &mut pool, 0),
            Err(PaillierError::PackingMismatch)
        ));
        assert!(pack_plain_batch(&kp.public(), spec, &[], &mut pool, 0).is_err());

        // Oversized batches are rejected up front.
        let many: Vec<PlainTensorMsg> = (0..spec.slots as u64 + 1)
            .map(|j| PlainTensorMsg { seq: j, shape: vec![1], values: vec![0] })
            .collect();
        assert!(pack_plain_batch(&kp.public(), spec, &many, &mut pool, 0).is_err());
    }

    #[test]
    fn unpack_final_rejects_obfuscated_input() {
        let kp = keypair(35);
        let stage = MergedStage {
            role: StageRole::NonLinear,
            ops: vec![ScaledOp::SoftMax { rescale: 1 }],
            input_shape: Shape::vector(1),
            output_shape: Shape::vector(1),
        };
        let nl = NonLinearStage { keypair: kp.clone(), stage, factor: 100, is_last: true, seed: 1 };
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap();
        let msg = PackedTensorMsg {
            seqs: vec![0],
            shape: vec![1],
            obfuscated: true,
            slot_bits: spec.slot_bits as u32,
            slots: spec.slots as u32,
            op_budget: spec.op_budget,
            weight: 1,
            cts: vec![],
        };
        assert!(unpack_final(&nl, msg, &WorkerPool::new(1)).is_err());
    }

    #[test]
    fn unpack_final_rejects_hostile_header_before_sizing_buffers() {
        // A peer controls `seqs`, `slots`, and `cts` independently; a
        // hostile header claiming u32::MAX slots with a long `seqs` list
        // must fail metadata validation instead of committing a
        // `seqs × cts` scatter allocation.
        let kp = keypair(36);
        let stage = MergedStage {
            role: StageRole::NonLinear,
            ops: vec![ScaledOp::SoftMax { rescale: 1 }],
            input_shape: Shape::vector(1),
            output_shape: Shape::vector(1),
        };
        let nl = NonLinearStage { keypair: kp.clone(), stage, factor: 100, is_last: true, seed: 2 };
        let msg = PackedTensorMsg {
            seqs: (0..4096).collect(),
            shape: vec![1],
            obfuscated: false,
            slot_bits: 40,
            slots: u32::MAX,
            op_budget: 1,
            weight: 1,
            cts: vec![vec![1u8; 8]; 64],
        };
        let wp = WorkerPool::new(1);
        assert!(matches!(
            unpack_final(&nl, msg, &wp),
            Err(PaillierError::InvalidPacking(_))
        ));

        // A batch with sequence numbers but no ciphertexts is malformed,
        // not a batch of empty tensors.
        let empty_cts = PackedTensorMsg {
            seqs: vec![0, 1],
            shape: vec![1],
            obfuscated: false,
            slot_bits: 40,
            slots: 4,
            op_budget: 1,
            weight: 1,
            cts: vec![],
        };
        assert!(matches!(
            unpack_final(&nl, empty_cts, &wp),
            Err(PaillierError::InvalidPacking(_))
        ));
    }
}
