//! Allocation plans: the bridge between the `pp-allocate` solver and the
//! runtime's per-stage worker pools.
//!
//! A [`AllocationPlan`] records how many worker threads (`y_i`) each
//! pipeline stage gets and where those numbers came from, so the session
//! can build pipelines whose pool sizes are allocator-driven instead of
//! hardcoded.

use pp_allocate::Allocation;

/// Where a plan's thread counts came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// The branch-and-bound ILP solver (Sec. IV-C).
    Solver,
    /// The even-split baseline (Exp#3's comparison point), also the
    /// fallback when the solver finds the instance infeasible.
    EvenSplit,
    /// A fixed thread count per stage — used for offline profiling,
    /// where the simulate model needs single-thread stage times `T_i`.
    Uniform,
}

/// Threads per pipeline stage (index 0 = encrypt stage) plus provenance.
#[derive(Clone, Debug)]
pub struct AllocationPlan {
    threads: Vec<usize>,
    source: PlanSource,
}

impl AllocationPlan {
    /// A plan giving every one of `n_stages` stages `threads` workers.
    pub fn uniform(n_stages: usize, threads: usize) -> Self {
        AllocationPlan { threads: vec![threads.max(1); n_stages], source: PlanSource::Uniform }
    }

    /// The single-thread plan used for offline profiling: the simulate
    /// model (Sec. IV-C) derives multi-thread predictions from
    /// single-thread stage times, so profiling pools must have one
    /// worker per stage.
    pub fn profiling_baseline(n_stages: usize) -> Self {
        Self::uniform(n_stages, 1)
    }

    /// Adopts a solved (or evenly split) allocation.
    pub fn from_allocation(alloc: &Allocation, source: PlanSource) -> Self {
        AllocationPlan { threads: alloc.threads.clone(), source }
    }

    /// Threads per stage, in pipeline order.
    pub fn threads(&self) -> &[usize] {
        &self.threads
    }

    /// Threads for one stage; clamps to 1 for out-of-range indices so a
    /// plan solved for fewer stages never produces a zero-sized pool.
    pub fn threads_for(&self, stage: usize) -> usize {
        self.threads.get(stage).copied().unwrap_or(1).max(1)
    }

    /// Number of stages the plan covers.
    pub fn n_stages(&self) -> usize {
        self.threads.len()
    }

    /// Provenance of the thread counts.
    pub fn source(&self) -> PlanSource {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan_clamps_to_one_thread() {
        let p = AllocationPlan::uniform(3, 0);
        assert_eq!(p.threads(), &[1, 1, 1]);
        assert_eq!(p.source(), PlanSource::Uniform);
    }

    #[test]
    fn profiling_baseline_is_single_threaded() {
        let p = AllocationPlan::profiling_baseline(5);
        assert_eq!(p.n_stages(), 5);
        assert!(p.threads().iter().all(|&t| t == 1));
    }

    #[test]
    fn from_allocation_copies_threads() {
        let alloc = Allocation { threads: vec![2, 4, 3], server_of: vec![0, 1, 0], objective: 1.5 };
        let p = AllocationPlan::from_allocation(&alloc, PlanSource::Solver);
        assert_eq!(p.threads(), &[2, 4, 3]);
        assert_eq!(p.threads_for(1), 4);
        assert_eq!(p.source(), PlanSource::Solver);
    }

    #[test]
    fn out_of_range_stage_gets_one_thread() {
        let p = AllocationPlan::uniform(2, 3);
        assert_eq!(p.threads_for(7), 1);
    }
}
