//! Crash-durable write-ahead journal for the session table.
//!
//! A model-provider process that dies takes its in-memory
//! [`SessionTable`](crate::net) with it; without a durable record every
//! client's exactly-once floor (`acked`/`started`) is lost and no
//! pre-crash session can resume. This module gives the table a
//! write-ahead journal: every state transition (session created, items
//! acked, round-0 floor raised, item quarantined, session removed) is
//! appended to a single append-only file *before* the reply that
//! acknowledges it leaves the process. On restart the journal is
//! replayed to rebuild the table, so a `Resume` against the restarted
//! process finds the same floors the dead process had promised.
//!
//! Nothing about the *computation* needs journaling: all server-side
//! randomness is derived from `(NetConfig::seed, stage, seq)` and the
//! client's public key (which the `Created` record carries), so a
//! restarted provider re-executes replayed items bit-identically by
//! construction — see DESIGN.md "Crash recovery model".
//!
//! ## File format
//!
//! ```text
//! magic: "PPJRNL1\n" (8 bytes)
//! record*: u32 len (LE) | u64 fnv1a-64 checksum of payload (LE) | payload
//! ```
//!
//! Payloads use the project wire codec (tag byte + fields). The reader
//! tolerates a truncated or corrupt tail — the normal shape of a file
//! whose writer was SIGKILLed mid-append — by stopping at the last
//! record whose length and checksum verify, then truncating the file
//! back to that point so the next append never splices onto garbage. A
//! corrupt *prefix* (foreign magic) is an error, never silently
//! clobbered.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Never`] (default) issues no fsync: records reach the
//! page cache on `write(2)` and survive process death (SIGKILL, panic,
//! OOM-kill) but not kernel panic or power loss. [`FsyncPolicy::Always`]
//! pays one `fdatasync` per record for full power-loss durability. The
//! middle grounds (periodic, batched) are deliberately absent until a
//! workload demands them.

use pp_stream_runtime::wire::{Decoder, Encoder, WireDecode, WireEncode};
use pp_stream_runtime::StreamError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// 8-byte file magic; the trailing newline keeps `head -1` honest.
pub const JOURNAL_MAGIC: &[u8; 8] = b"PPJRNL1\n";

/// Default journal file name under [`JournalConfig::dir`].
pub const JOURNAL_FILE: &str = "sessions.journal";

/// Per-record payload cap. Payloads are a few hundred bytes (the
/// largest carries a public-key modulus); anything near this cap means
/// the length field is garbage, so the reader treats it as tail
/// corruption rather than attempting a 4 GiB allocation.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of framing before each payload: u32 length + u64 checksum.
const RECORD_HEADER: usize = 4 + 8;

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// No fsync. Durable across process death (the kernel owns the
    /// pages once `write` returns) but not power loss. The default:
    /// crash-restart is the failure mode the serve path is built for.
    #[default]
    Never,
    /// `fdatasync` after every record: power-loss durable, one disk
    /// round-trip per session transition.
    Always,
}

impl FsyncPolicy {
    /// Parses `PP_JOURNAL_FSYNC`-style values: `always`/`1` ⇒ `Always`,
    /// anything else (including unset) ⇒ `Never`.
    pub fn parse(v: &str) -> FsyncPolicy {
        match v.trim().to_ascii_lowercase().as_str() {
            "always" | "1" | "true" => FsyncPolicy::Always,
            _ => FsyncPolicy::Never,
        }
    }
}

/// Where (and how durably) the session journal lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Directory holding the journal file (created if absent).
    pub dir: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
}

impl JournalConfig {
    /// Journal under `dir` with the default (no-fsync) policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig { dir: dir.into(), fsync: FsyncPolicy::Never }
    }

    /// Reads `PP_JOURNAL_DIR` (and `PP_JOURNAL_FSYNC`); `None` when no
    /// directory is configured — journaling stays off and the serve
    /// path is byte-for-byte what it was before journaling existed.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var("PP_JOURNAL_DIR").ok().filter(|d| !d.is_empty())?;
        let fsync = std::env::var("PP_JOURNAL_FSYNC")
            .map(|v| FsyncPolicy::parse(&v))
            .unwrap_or_default();
        Some(JournalConfig { dir: PathBuf::from(dir), fsync })
    }

    /// Full path of the journal file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }
}

/// One durable session-table transition.
///
/// The variants mirror the mutating methods of the session table; a
/// replayed sequence of records rebuilds the table exactly because each
/// mutation is monotone (floors only rise, quarantine only grows) —
/// replay order is append order, so the end state is the crash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A session was admitted: everything `Resume` needs to validate a
    /// returning client and rebuild its execution context.
    Created {
        session: u64,
        /// Client public-key modulus bytes (big-endian), enough to
        /// rebuild the homomorphic execution context after restart.
        pk_n: Vec<u8>,
        pk_fingerprint: u64,
        topology: u64,
        /// Negotiated pack spec `(slot_bits, slots, op_budget)`;
        /// `None` for unpacked sessions. Resume always renegotiates
        /// down to unpacked, so this is diagnostic, but it keeps the
        /// journal a complete record of what was promised.
        pack: Option<(u32, u32, u64)>,
    },
    /// Client confirmed delivery of items `0..acked`.
    Acked { session: u64, acked: u64 },
    /// Round 0 of items `0..started` has begun at least once.
    Started { session: u64, started: u64 },
    /// Item `seq` poisoned its execution and is permanently refused.
    Quarantined { session: u64, seq: u64 },
    /// Session ended (Bye or eviction); replay must not resurrect it.
    Removed { session: u64 },
}

const TAG_CREATED: u8 = 1;
const TAG_ACKED: u8 = 2;
const TAG_STARTED: u8 = 3;
const TAG_QUARANTINED: u8 = 4;
const TAG_REMOVED: u8 = 5;

impl WireEncode for JournalRecord {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            JournalRecord::Created { session, pk_n, pk_fingerprint, topology, pack } => {
                enc.put_u8(TAG_CREATED);
                enc.put_u64(*session);
                enc.put_bytes(pk_n);
                enc.put_u64(*pk_fingerprint);
                enc.put_u64(*topology);
                match pack {
                    Some((slot_bits, slots, budget)) => {
                        enc.put_u8(1);
                        enc.put_u32(*slot_bits);
                        enc.put_u32(*slots);
                        enc.put_u64(*budget);
                    }
                    None => enc.put_u8(0),
                }
            }
            JournalRecord::Acked { session, acked } => {
                enc.put_u8(TAG_ACKED);
                enc.put_u64(*session);
                enc.put_u64(*acked);
            }
            JournalRecord::Started { session, started } => {
                enc.put_u8(TAG_STARTED);
                enc.put_u64(*session);
                enc.put_u64(*started);
            }
            JournalRecord::Quarantined { session, seq } => {
                enc.put_u8(TAG_QUARANTINED);
                enc.put_u64(*session);
                enc.put_u64(*seq);
            }
            JournalRecord::Removed { session } => {
                enc.put_u8(TAG_REMOVED);
                enc.put_u64(*session);
            }
        }
    }
}

impl WireDecode for JournalRecord {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        let tag = dec.get_u8()?;
        match tag {
            TAG_CREATED => {
                let session = dec.get_u64()?;
                let pk_n = dec.get_bytes()?;
                let pk_fingerprint = dec.get_u64()?;
                let topology = dec.get_u64()?;
                let pack = match dec.get_u8()? {
                    0 => None,
                    1 => Some((dec.get_u32()?, dec.get_u32()?, dec.get_u64()?)),
                    other => {
                        return Err(StreamError::Decode(format!(
                            "journal Created: bad pack flag {other}"
                        )))
                    }
                };
                Ok(JournalRecord::Created { session, pk_n, pk_fingerprint, topology, pack })
            }
            TAG_ACKED => Ok(JournalRecord::Acked { session: dec.get_u64()?, acked: dec.get_u64()? }),
            TAG_STARTED => {
                Ok(JournalRecord::Started { session: dec.get_u64()?, started: dec.get_u64()? })
            }
            TAG_QUARANTINED => {
                Ok(JournalRecord::Quarantined { session: dec.get_u64()?, seq: dec.get_u64()? })
            }
            TAG_REMOVED => Ok(JournalRecord::Removed { session: dec.get_u64()? }),
            other => Err(StreamError::Decode(format!("journal: unknown record tag {other}"))),
        }
    }
}

/// FNV-1a 64-bit — the checksum guarding each record. Not
/// cryptographic; it only needs to catch a torn write, and it keeps the
/// journal dependency-free.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What replaying a journal found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Valid records, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded from a truncated/corrupt tail (0 on clean open).
    pub truncated_bytes: u64,
}

/// An open, append-positioned session journal.
pub struct Journal {
    file: File,
    fsync: FsyncPolicy,
    path: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("fsync", &self.fsync)
            .finish()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replays every
    /// valid record, truncates any torn tail, and leaves the file
    /// positioned for appends.
    ///
    /// A file that exists but starts with something other than the
    /// journal magic is refused with `InvalidData` — a misconfigured
    /// `PP_JOURNAL_DIR` pointed at real data must not get clobbered. A
    /// file shorter than the magic can only be *our* interrupted first
    /// write (no record ever preceded it), so it is reset in place.
    pub fn open(path: &Path, fsync: FsyncPolicy) -> std::io::Result<(Journal, Replay)> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut replay = Replay::default();
        let valid_len: u64;
        if raw.is_empty() || raw.len() < JOURNAL_MAGIC.len() {
            // Brand new, or a first magic write torn by a crash before
            // any record existed: start clean.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(JOURNAL_MAGIC)?;
            if fsync == FsyncPolicy::Always {
                file.sync_data()?;
            }
            valid_len = JOURNAL_MAGIC.len() as u64;
        } else if &raw[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not a PP-Stream session journal", path.display()),
            ));
        } else {
            let mut pos = JOURNAL_MAGIC.len();
            while let Some((record, next)) = read_record(&raw, pos) {
                replay.records.push(record);
                pos = next;
            }
            replay.truncated_bytes = (raw.len() - pos) as u64;
            valid_len = pos as u64;
            if replay.truncated_bytes > 0 {
                // Drop the torn tail so the next append starts on a
                // record boundary instead of splicing onto garbage.
                file.set_len(valid_len)?;
            }
        }
        file.seek(SeekFrom::Start(valid_len))?;
        Ok((Journal { file, fsync, path: path.to_path_buf() }, replay))
    }

    /// Appends one record (a single `write(2)`, plus `fdatasync` under
    /// [`FsyncPolicy::Always`]).
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        let mut enc = Encoder::new();
        record.encode(&mut enc);
        let payload = enc.finish();
        let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        self.file.write_all(&buf)?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Tries to read one framed record at byte offset `pos`; `None` on any
/// shortfall, oversize length, checksum mismatch, or undecodable
/// payload — all of which mean "the valid journal ends here".
fn read_record(raw: &[u8], pos: usize) -> Option<(JournalRecord, usize)> {
    let header = raw.get(pos..pos + RECORD_HEADER)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?);
    if len > MAX_RECORD_LEN {
        return None;
    }
    let want = u64::from_le_bytes(header[4..12].try_into().ok()?);
    let payload = raw.get(pos + RECORD_HEADER..pos + RECORD_HEADER + len as usize)?;
    if fnv1a64(payload) != want {
        return None;
    }
    let mut dec = Decoder::new(bytes::Bytes::from(payload.to_vec()));
    let record = JournalRecord::decode(&mut dec).ok()?;
    if dec.remaining() != 0 {
        // Trailing bytes mean the payload is not a record of ours.
        return None;
    }
    Some((record, pos + RECORD_HEADER + len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch path per test; no tempfile crate in the
    /// dependency policy, so roll the classic pid+counter scheme.
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pp-journal-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(JOURNAL_FILE)
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Created {
                session: 1,
                pk_n: vec![0xAB; 32],
                pk_fingerprint: 0xFEED_F00D,
                topology: 0x1234_5678_9ABC_DEF0,
                pack: Some((17, 8, 16)),
            },
            JournalRecord::Started { session: 1, started: 3 },
            JournalRecord::Acked { session: 1, acked: 2 },
            JournalRecord::Quarantined { session: 1, seq: 2 },
            JournalRecord::Created {
                session: 2,
                pk_n: vec![1, 2, 3],
                pk_fingerprint: 7,
                topology: 9,
                pack: None,
            },
            JournalRecord::Removed { session: 1 },
        ]
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = scratch("roundtrip");
        let records = sample_records();
        {
            let (mut j, replay) = Journal::open(&path, FsyncPolicy::Always).expect("open");
            assert!(replay.records.is_empty());
            for r in &records {
                j.append(r).expect("append");
            }
        }
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(replay.records, records);
        assert_eq!(replay.truncated_bytes, 0);
    }

    #[test]
    fn empty_file_is_a_fresh_journal() {
        let path = scratch("empty");
        std::fs::write(&path, b"").expect("touch");
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open empty");
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_bytes, 0);
        // The magic was installed so a reopen sees a valid journal.
        assert_eq!(std::fs::read(&path).expect("read"), JOURNAL_MAGIC);
    }

    #[test]
    fn torn_magic_is_reset_not_refused() {
        let path = scratch("torn-magic");
        std::fs::write(&path, &JOURNAL_MAGIC[..3]).expect("write partial magic");
        let (mut j, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open");
        assert!(replay.records.is_empty());
        j.append(&JournalRecord::Removed { session: 1 }).expect("append");
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(replay.records, vec![JournalRecord::Removed { session: 1 }]);
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = scratch("foreign");
        std::fs::write(&path, b"definitely not a journal, hands off").expect("write");
        let err = Journal::open(&path, FsyncPolicy::Never).expect_err("must refuse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // And the file was left untouched.
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"definitely not a journal, hands off"
        );
    }

    #[test]
    fn truncated_tail_stops_cleanly_and_truncates_file() {
        let path = scratch("torn-tail");
        let records = sample_records();
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).expect("open");
            for r in &records {
                j.append(r).expect("append");
            }
        }
        let full = std::fs::read(&path).expect("read");
        // Chop mid-way through the last record.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let (mut j, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open torn");
        assert_eq!(replay.records, records[..records.len() - 1]);
        assert!(replay.truncated_bytes > 0);
        // Appends after recovery land on a clean boundary.
        j.append(&JournalRecord::Acked { session: 2, acked: 9 }).expect("append");
        drop(j);
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("reopen");
        let mut want = records[..records.len() - 1].to_vec();
        want.push(JournalRecord::Acked { session: 2, acked: 9 });
        assert_eq!(replay.records, want);
        assert_eq!(replay.truncated_bytes, 0);
    }

    #[test]
    fn oversize_length_field_is_tail_corruption() {
        let path = scratch("oversize");
        let mut raw = JOURNAL_MAGIC.to_vec();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &raw).expect("write");
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open");
        assert!(replay.records.is_empty());
        assert!(replay.truncated_bytes > 0);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always"), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("ALWAYS"), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("1"), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never"), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse(""), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("0"), FsyncPolicy::Never);
    }
}
