//! Operation encapsulation (paper Sec. IV-B): merge adjacent primitive
//! layers of the same type into one stage each, yielding alternating
//! linear / non-linear pipelined stages.
//!
//! The two rejected extremes the paper discusses — one stage per
//! primitive layer (serialization overhead) and one stage for everything
//! (breaks privacy) — are reproduced as configurations in the `pp-bench`
//! ablation `abl_encapsulation`.

use crate::CoreError;
use pp_nn::scaling::{ScaledModel, ScaledOp};
use pp_tensor::Shape;

/// Whether a stage runs on the model provider (linear, homomorphic) or
/// the data provider (non-linear, on decrypted permuted values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageRole {
    Linear,
    NonLinear,
}

/// One merged primitive layer = one pipeline stage.
#[derive(Clone, Debug)]
pub struct MergedStage {
    pub role: StageRole,
    /// The scaled primitive ops executed by this stage, in order.
    pub ops: Vec<ScaledOp>,
    /// Input tensor shape of the stage.
    pub input_shape: Shape,
    /// Output tensor shape of the stage.
    pub output_shape: Shape,
}

/// Output shape of one scaled op.
pub(crate) fn op_output_shape(op: &ScaledOp, input: &Shape) -> Result<Shape, CoreError> {
    match op {
        ScaledOp::Conv2d { spec, .. } => spec
            .output_shape(input)
            .map_err(|e| CoreError::Model(e.to_string())),
        ScaledOp::Dense { weights, .. } => {
            let dims = weights.shape().dims();
            if input.len() != dims[1] {
                return Err(CoreError::Model(format!(
                    "dense expects {} inputs, got {input}",
                    dims[1]
                )));
            }
            Ok(Shape::vector(dims[0]))
        }
        ScaledOp::Affine { .. }
        | ScaledOp::ScaleMul { .. }
        | ScaledOp::ReLU { .. }
        | ScaledOp::Sigmoid { .. }
        | ScaledOp::SoftMax { .. } => Ok(input.clone()),
        ScaledOp::SumPool { window, stride } => pp_tensor::ops::pool_output_shape(input, *window, *stride)
            .map_err(|e| CoreError::Model(e.to_string())),
        ScaledOp::MaxPool { .. } => Err(CoreError::Model(
            "MaxPool cannot run under obfuscation; build the model with \
             stride-2 convolutions instead (zoo::vgg_streamable, paper Sec. III-C / [62])"
                .into(),
        )),
        ScaledOp::Flatten => Ok(Shape::vector(input.len())),
    }
}

/// Encapsulates a scaled model into alternating merged stages,
/// validating the protocol's structural assumptions: the network starts
/// with a linear primitive, ends with a non-linear one, contains no
/// mid-network MaxPool, and uses SoftMax only in the final stage
/// (obfuscation is skipped there — Fig. 3, last round).
pub fn encapsulate(model: &ScaledModel) -> Result<Vec<MergedStage>, CoreError> {
    encapsulate_with(model, true)
}

/// As [`encapsulate`], with merging controllable: `merge = false` gives
/// one stage per primitive layer — the paper's rejected "each primitive
/// layer into a single stage" extreme, kept for the encapsulation
/// ablation bench. Consecutive same-type primitives then pay an extra
/// serialization hop each (and, across linear stages, an extra
/// obfuscation round trip is *not* inserted: adjacent linear stages
/// belong to the same provider, so the obfuscation cadence is
/// unchanged — only the stage/serialization structure differs).
pub fn encapsulate_with(model: &ScaledModel, merge: bool) -> Result<Vec<MergedStage>, CoreError> {
    let ops = model.ops();
    if ops.is_empty() {
        return Err(CoreError::Model("empty model".into()));
    }
    let role_of = |op: &ScaledOp| {
        if op.is_linear() {
            StageRole::Linear
        } else {
            StageRole::NonLinear
        }
    };

    let mut stages: Vec<MergedStage> = Vec::new();
    let mut shape = model.input_shape().clone();
    for op in ops {
        let out_shape = op_output_shape(op, &shape)?;
        let role = role_of(op);
        match stages.last_mut() {
            Some(stage) if merge && stage.role == role => {
                stage.ops.push(op.clone());
                stage.output_shape = out_shape.clone();
            }
            _ => stages.push(MergedStage {
                role,
                ops: vec![op.clone()],
                input_shape: shape.clone(),
                output_shape: out_shape.clone(),
            }),
        }
        shape = out_shape;
    }

    // Structural validation.
    if stages.first().map(|s| s.role) != Some(StageRole::Linear) {
        return Err(CoreError::Model(
            "protocol requires the network to start with a linear layer (Sec. III-A)".into(),
        ));
    }
    if stages.last().map(|s| s.role) != Some(StageRole::NonLinear) {
        return Err(CoreError::Model(
            "protocol requires the network to end with a non-linear layer (Sec. III-A)".into(),
        ));
    }
    let last = stages.len() - 1;
    for (i, stage) in stages.iter().enumerate() {
        if i < last && stage.ops.iter().any(|op| matches!(op, ScaledOp::SoftMax { .. })) {
            return Err(CoreError::Model(
                "SoftMax is only supported in the final stage (it does not commute with \
                 obfuscation, Sec. III-C)"
                    .into(),
            ));
        }
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::{zoo, ScaledModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scaled(model: pp_nn::Model) -> ScaledModel {
        ScaledModel::from_model(&model, 100)
    }

    #[test]
    fn stages_alternate_roles() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = scaled(zoo::mnist3_2conv2fc(&mut rng).unwrap());
        let stages = encapsulate(&m).unwrap();
        for pair in stages.windows(2) {
            assert_ne!(pair[0].role, pair[1].role, "adjacent stages share a role");
        }
        assert_eq!(stages.first().unwrap().role, StageRole::Linear);
        assert_eq!(stages.last().unwrap().role, StageRole::NonLinear);
    }

    #[test]
    fn mnist3_stage_structure() {
        // Conv ReLU Conv ReLU Flatten Dense ReLU Dense SoftMax →
        // L[conv] N[relu] L[conv] N[relu] L[flatten,dense] N[relu]
        // L[dense] N[softmax] = 8 stages.
        let mut rng = StdRng::seed_from_u64(2);
        let m = scaled(zoo::mnist3_2conv2fc(&mut rng).unwrap());
        let stages = encapsulate(&m).unwrap();
        assert_eq!(stages.len(), 8);
        assert_eq!(stages[4].ops.len(), 2, "flatten merges with dense");
    }

    #[test]
    fn shapes_chain_correctly() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = scaled(zoo::mnist2_1conv2fc(&mut rng).unwrap());
        let stages = encapsulate(&m).unwrap();
        assert_eq!(stages[0].input_shape.dims(), &[1, 28, 28]);
        assert_eq!(stages[0].output_shape.dims(), &[8, 14, 14]);
        for pair in stages.windows(2) {
            assert_eq!(pair[0].output_shape, pair[1].input_shape);
        }
        assert_eq!(stages.last().unwrap().output_shape.dims(), &[10]);
    }

    #[test]
    fn mixed_layer_splits_between_stages() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = pp_nn::Model::new(
            "mixed",
            vec![3],
            vec![
                zoo::dense_layer(&mut rng, 3, 4),
                pp_nn::Layer::ScaledSigmoid { alpha: 0.5 },
                zoo::dense_layer(&mut rng, 4, 2),
                pp_nn::Layer::SoftMax,
            ],
        )
        .unwrap();
        let stages = encapsulate(&scaled(model)).unwrap();
        // L[dense, scale] N[sigmoid] L[dense] N[softmax]
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[0].ops.len(), 2, "dense merges with the sigmoid's linear half");
    }

    #[test]
    fn maxpool_rejected_with_hint() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = scaled(zoo::vgg("v", 13, 32, &mut rng).unwrap());
        let err = encapsulate(&m).unwrap_err();
        assert!(err.to_string().contains("vgg_streamable"), "{err}");
    }

    #[test]
    fn streamable_vgg_encapsulates() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = scaled(zoo::vgg_streamable("v", 13, 32, &mut rng).unwrap());
        let stages = encapsulate(&m).unwrap();
        assert!(stages.len() >= 20, "VGG13 should produce many stages, got {}", stages.len());
        assert_eq!(stages.last().unwrap().output_shape.dims(), &[10]);
    }

    #[test]
    fn nonlinear_first_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = pp_nn::Model::new(
            "bad",
            vec![4],
            vec![
                pp_nn::Layer::ReLU,
                zoo::dense_layer(&mut rng, 4, 2),
                pp_nn::Layer::SoftMax,
            ],
        )
        .unwrap();
        assert!(encapsulate(&scaled(model)).is_err());
    }

    #[test]
    fn linear_last_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = pp_nn::Model::new(
            "bad",
            vec![4],
            vec![zoo::dense_layer(&mut rng, 4, 2)],
        )
        .unwrap();
        assert!(encapsulate(&scaled(model)).is_err());
    }
}
