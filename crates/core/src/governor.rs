//! Per-connection resource governor for the serving paths.
//!
//! Before this module, a single peer could claim a 1 GiB frame with a
//! 20-byte header, or grow an unbounded reply backlog by never reading.
//! The governor closes both holes with budgets derived from what the
//! handshake actually *negotiated*, instead of one blanket constant:
//!
//! * **Pre-auth ceiling** — until a connection's `Hello`/`Resume` is
//!   accepted, its frames are capped at a small fixed size
//!   ([`PRE_AUTH_MAX_FRAME`]). An unauthenticated peer can never force
//!   a large allocation; every handshake message fits comfortably.
//! * **Post-auth ceiling** — once the handshake pins the key width,
//!   topology, and packing factor, the largest legitimate frame is
//!   computable: a tensor of `max_stage_elems` ciphertexts, each
//!   `2 × key_bytes` of `n²` residue plus length prefixes, plus packing
//!   metadata and message framing, doubled for slack. Anything larger
//!   is a [`TransportErrorKind::FrameLimit`] breach — rejected before
//!   the payload is read, let alone allocated.
//! * **Write backlog cap** — replies queue in a per-connection
//!   `WriteBuf` while the peer's socket is full. A consumer that stops
//!   reading is *evicted* once its backlog crosses
//!   [`GovernorConfig::write_backlog`]; its session entry survives, so
//!   a well-behaved successor resumes via the journal path.
//! * **Global memory budget** — the sum of all connections' buffered
//!   bytes (decode buffers + write backlogs) is tracked against
//!   [`GovernorConfig::mem_budget`]; while over budget, new
//!   connections are busy-rejected exactly like the session cap, and
//!   clients retry/fail over as they already do for `Busy`.
//!
//! Every limit has an env override (`PP_MAX_FRAME`,
//! `PP_WRITE_BACKLOG`, `PP_MEM_BUDGET`) and a [`NetConfig`] field so
//! tests can pin budgets without env races.
//!
//! [`TransportErrorKind::FrameLimit`]: pp_stream_runtime::TransportErrorKind::FrameLimit
//! [`NetConfig`]: crate::net::NetConfig

use std::sync::atomic::{AtomicUsize, Ordering};

use pp_stream_runtime::tcp;

/// Frame ceiling for connections that have not completed the
/// handshake. Hello carries a public-key modulus (≤ 4096 bytes by
/// `validate_hello`), digests, and a handful of integers; Resume is
/// smaller. 64 KiB holds every legitimate handshake frame with an
/// order of magnitude to spare while keeping the worst-case
/// pre-auth allocation trivial.
pub const PRE_AUTH_MAX_FRAME: usize = 64 * 1024;

/// Default per-connection write-backlog cap (bytes queued in a
/// connection's `WriteBuf` before the peer is evicted as a slow
/// consumer).
pub const DEFAULT_WRITE_BACKLOG: usize = 64 * 1024 * 1024;

/// Default global budget for bytes buffered across all connections.
pub const DEFAULT_MEM_BUDGET: usize = 1 << 30;

/// Floor for the configurable caps, so a typo'd env value cannot brick
/// the handshake itself.
pub const MIN_BUDGET: usize = PRE_AUTH_MAX_FRAME;

/// Resource limits for one serving endpoint. `Default` reads the
/// `PP_MAX_FRAME` / `PP_WRITE_BACKLOG` / `PP_MEM_BUDGET` environment;
/// tests construct explicit values instead (env vars are racy across
/// the parallel test harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Hard upper bound on any negotiated frame ceiling
    /// (`PP_MAX_FRAME`, default 1 GiB — the pre-governor blanket
    /// limit, now the outermost fence rather than the only one).
    pub max_frame: usize,
    /// Per-connection write-backlog cap in bytes (`PP_WRITE_BACKLOG`).
    pub write_backlog: usize,
    /// Global buffered-bytes budget across all connections
    /// (`PP_MEM_BUDGET`).
    pub mem_budget: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl GovernorConfig {
    /// Reads the three limits from the environment.
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Same as [`GovernorConfig::from_env`] with an injectable lookup,
    /// so parsing is testable without touching the process environment.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        GovernorConfig {
            max_frame: tcp::parse_max_frame(lookup("PP_MAX_FRAME").as_deref()),
            write_backlog: parse_bytes(lookup("PP_WRITE_BACKLOG").as_deref(), DEFAULT_WRITE_BACKLOG),
            mem_budget: parse_bytes(lookup("PP_MEM_BUDGET").as_deref(), DEFAULT_MEM_BUDGET),
        }
    }

    /// The frame ceiling for a connection that has not yet
    /// authenticated: the fixed pre-auth cap, never above the
    /// configured maximum.
    pub fn pre_auth_ceiling(&self) -> usize {
        PRE_AUTH_MAX_FRAME.min(self.max_frame)
    }

    /// The frame ceiling for a connection whose handshake negotiated a
    /// `pk_n_len`-byte modulus, stages of at most `max_stage_elems`
    /// elements, and `pack_slots` packing slots (0 when packing is
    /// off).
    ///
    /// Largest legitimate frame: one tensor message of
    /// `max_stage_elems` ciphertexts, each a length-prefixed `n²`
    /// residue (≤ `2 × pk_n_len` bytes), plus per-slot packing
    /// metadata and fixed message/frame overhead — all doubled so an
    /// off-by-some encoding change degrades to "still accepted", not
    /// "silently evicts every client". Clamped to
    /// `[pre-auth ceiling, max_frame]`.
    pub fn negotiated_ceiling(
        &self,
        pk_n_len: usize,
        max_stage_elems: usize,
        pack_slots: usize,
    ) -> usize {
        let per_ct = 2usize.saturating_mul(pk_n_len).saturating_add(16);
        let body = max_stage_elems
            .saturating_mul(per_ct)
            .saturating_add(pack_slots.saturating_mul(8))
            .saturating_add(4096);
        body.saturating_mul(2).clamp(self.pre_auth_ceiling(), self.max_frame)
    }
}

fn parse_bytes(v: Option<&str>, default: usize) -> usize {
    match v {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.max(MIN_BUDGET),
            _ => default,
        },
        None => default,
    }
}

/// Shared accounting for one serving endpoint: the configured limits
/// plus a global count of bytes currently buffered on behalf of peers
/// (decode buffers and write backlogs). Connections `charge` their
/// buffered footprint as it changes and `release` it on close; the
/// acceptor busy-rejects while the endpoint is over budget.
#[derive(Debug, Default)]
pub struct Governor {
    pub config: GovernorConfig,
    in_use: AtomicUsize,
}

impl Governor {
    pub fn new(config: GovernorConfig) -> Self {
        Governor { config, in_use: AtomicUsize::new(0) }
    }

    /// Bytes currently buffered across all connections.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Re-states one connection's buffered footprint from `old` to
    /// `new` bytes (callers track their previous charge).
    pub fn recharge(&self, old: usize, new: usize) {
        if new >= old {
            self.in_use.fetch_add(new - old, Ordering::Relaxed);
        } else {
            self.in_use.fetch_sub(old - new, Ordering::Relaxed);
        }
    }

    /// Drops a closing connection's remaining charge.
    pub fn release(&self, charge: usize) {
        if charge > 0 {
            self.in_use.fetch_sub(charge, Ordering::Relaxed);
        }
    }

    /// Whether buffered bytes exceed the global budget. New work is
    /// busy-rejected while true; existing connections keep draining,
    /// which is what brings the endpoint back under budget.
    pub fn over_budget(&self) -> bool {
        self.in_use() > self.config.mem_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_frame: usize) -> GovernorConfig {
        GovernorConfig {
            max_frame,
            write_backlog: DEFAULT_WRITE_BACKLOG,
            mem_budget: DEFAULT_MEM_BUDGET,
        }
    }

    #[test]
    fn lookup_parsing_defaults_and_clamps() {
        let none = GovernorConfig::from_lookup(|_| None);
        assert_eq!(none.max_frame, tcp::DEFAULT_MAX_FRAME);
        assert_eq!(none.write_backlog, DEFAULT_WRITE_BACKLOG);
        assert_eq!(none.mem_budget, DEFAULT_MEM_BUDGET);

        let junk = GovernorConfig::from_lookup(|_| Some("not-a-number".into()));
        assert_eq!(junk, none, "junk values fall back to defaults");

        let tiny = GovernorConfig::from_lookup(|k| match k {
            "PP_MAX_FRAME" => Some("1".into()),
            "PP_WRITE_BACKLOG" => Some("7".into()),
            "PP_MEM_BUDGET" => Some("9".into()),
            _ => None,
        });
        assert_eq!(tiny.max_frame, tcp::MIN_MAX_FRAME, "frame floor holds");
        assert_eq!(tiny.write_backlog, MIN_BUDGET, "backlog floor holds");
        assert_eq!(tiny.mem_budget, MIN_BUDGET, "budget floor holds");

        let set = GovernorConfig::from_lookup(|k| match k {
            "PP_MAX_FRAME" => Some("1048576".into()),
            "PP_WRITE_BACKLOG" => Some("2097152".into()),
            "PP_MEM_BUDGET" => Some("4194304".into()),
            _ => None,
        });
        assert_eq!(set, GovernorConfig {
            max_frame: 1 << 20,
            write_backlog: 2 << 20,
            mem_budget: 4 << 20,
        });
    }

    #[test]
    fn pre_auth_ceiling_is_small_and_respects_max_frame() {
        assert_eq!(cfg(tcp::DEFAULT_MAX_FRAME).pre_auth_ceiling(), PRE_AUTH_MAX_FRAME);
        assert_eq!(cfg(16 * 1024).pre_auth_ceiling(), 16 * 1024, "max_frame can tighten it");
    }

    #[test]
    fn negotiated_ceiling_scales_with_the_handshake() {
        let c = cfg(tcp::DEFAULT_MAX_FRAME);
        // 128-byte modulus (1024-bit key), 64-wide stage, no packing.
        let small = c.negotiated_ceiling(128, 64, 0);
        // Same key, 4096-wide stage: must admit proportionally more.
        let wide = c.negotiated_ceiling(128, 4096, 0);
        assert!(small >= PRE_AUTH_MAX_FRAME);
        assert!(wide > small, "wider topology ⇒ higher ceiling");
        // A full tensor of worst-case ciphertexts fits under it.
        assert!(wide >= 4096 * 2 * 128, "ceiling admits the largest legitimate frame");
        // Yet the ceiling is nowhere near the blanket 1 GiB.
        assert!(wide < 16 * 1024 * 1024, "ceiling is orders of magnitude under 1 GiB");
    }

    #[test]
    fn negotiated_ceiling_clamps_to_configured_bounds() {
        let c = cfg(tcp::DEFAULT_MAX_FRAME);
        assert_eq!(c.negotiated_ceiling(1, 0, 0), PRE_AUTH_MAX_FRAME, "floor at pre-auth cap");
        assert_eq!(
            c.negotiated_ceiling(usize::MAX, usize::MAX, usize::MAX),
            tcp::DEFAULT_MAX_FRAME,
            "saturates then clamps to max_frame"
        );
        let tight = cfg(256 * 1024);
        assert_eq!(tight.negotiated_ceiling(4096, 1 << 20, 64), 256 * 1024);
    }

    #[test]
    fn accounting_tracks_recharge_and_release() {
        let g = Governor::new(GovernorConfig {
            max_frame: tcp::DEFAULT_MAX_FRAME,
            write_backlog: DEFAULT_WRITE_BACKLOG,
            mem_budget: 1000,
        });
        assert!(!g.over_budget());
        g.recharge(0, 600);
        g.recharge(0, 600);
        assert_eq!(g.in_use(), 1200);
        assert!(g.over_budget());
        g.recharge(600, 100);
        assert_eq!(g.in_use(), 700);
        assert!(!g.over_budget());
        g.release(100);
        g.release(600);
        assert_eq!(g.in_use(), 0);
    }
}
