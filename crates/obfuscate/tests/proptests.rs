//! Property tests for the obfuscation substrate.

use pp_obfuscate::{distance_correlation, Permutation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn apply_then_invert_is_identity(
        data in proptest::collection::vec(any::<i64>(), 1..200),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(data.len(), &mut rng);
        let shuffled = p.apply(&data).unwrap();
        prop_assert_eq!(p.invert(&shuffled).unwrap(), data);
    }

    #[test]
    fn permutation_preserves_multiset(
        data in proptest::collection::vec(-100i64..100, 1..100),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(data.len(), &mut rng);
        let shuffled = p.apply(&data).unwrap();
        let mut a = data.clone();
        let mut b = shuffled;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn inverse_of_inverse_is_original(n in 1usize..100, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(n, &mut rng);
        prop_assert_eq!(p.inverted().inverted(), p);
    }

    #[test]
    fn from_forward_validates(indices in proptest::collection::vec(0usize..50, 1..50)) {
        let n = indices.len();
        let is_perm = {
            let mut seen = vec![false; n];
            indices.iter().all(|&i| {
                if i < n && !seen[i] {
                    seen[i] = true;
                    true
                } else {
                    false
                }
            })
        };
        prop_assert_eq!(Permutation::from_forward(indices).is_ok(), is_perm);
    }

    #[test]
    fn dcor_symmetric_and_bounded(
        x in proptest::collection::vec(-10.0f64..10.0, 5..40),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(x.len(), &mut rng);
        let y = p.apply(&x).unwrap();
        let d1 = distance_correlation(&x, &y);
        let d2 = distance_correlation(&y, &x);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&d1), "d={d1}");
    }

    #[test]
    fn dcor_invariant_to_affine_transform(
        x in proptest::collection::vec(-10.0f64..10.0, 5..30),
        scale in 0.1f64..5.0,
        shift in -5.0f64..5.0,
    ) {
        prop_assume!(x.iter().any(|&v| (v - x[0]).abs() > 1e-9));
        let y: Vec<f64> = x.iter().map(|&v| v * scale + shift).collect();
        let d = distance_correlation(&x, &y);
        prop_assert!((d - 1.0).abs() < 1e-6, "d={d}");
    }
}
