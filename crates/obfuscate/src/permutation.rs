//! Seeded random permutations with inverses.

use crate::ObfuscateError;
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of `n` positions: `apply` moves the element at position
/// `i` to position `perm[i]`'s slot — concretely, output index `j` takes
/// input element `forward[j]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `forward[j]` = index of the input element placed at output slot `j`.
    forward: Vec<usize>,
    /// `inverse[i]` = output slot of input element `i`.
    inverse: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<usize> = (0..n).collect();
        Permutation { inverse: forward.clone(), forward }
    }

    /// Draws a uniformly random permutation on `n` elements
    /// (Fisher–Yates via `SliceRandom::shuffle`). The model provider draws
    /// a fresh one per round of the protocol.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut forward: Vec<usize> = (0..n).collect();
        forward.shuffle(rng);
        Self::from_forward(forward).expect("shuffle of 0..n is a permutation")
    }

    /// Builds from an explicit forward index vector, validating it is a
    /// bijection on `0..n`.
    pub fn from_forward(forward: Vec<usize>) -> Result<Self, ObfuscateError> {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (j, &i) in forward.iter().enumerate() {
            if i >= n || inverse[i] != usize::MAX {
                return Err(ObfuscateError::NotAPermutation);
            }
            inverse[i] = j;
        }
        Ok(Permutation { forward, inverse })
    }

    /// Number of permuted positions.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The forward index vector.
    pub fn forward_indices(&self) -> &[usize] {
        &self.forward
    }

    /// Permutes a slice: output slot `j` receives `data[forward[j]]`.
    pub fn apply<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, ObfuscateError> {
        if data.len() != self.forward.len() {
            return Err(ObfuscateError::LengthMismatch {
                permutation: self.forward.len(),
                data: data.len(),
            });
        }
        Ok(self.forward.iter().map(|&i| data[i].clone()).collect())
    }

    /// Inverts a previously permuted slice, restoring original positions.
    pub fn invert<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, ObfuscateError> {
        if data.len() != self.inverse.len() {
            return Err(ObfuscateError::LengthMismatch {
                permutation: self.inverse.len(),
                data: data.len(),
            });
        }
        Ok(self.inverse.iter().map(|&i| data[i].clone()).collect())
    }

    /// The inverse permutation as its own object.
    pub fn inverted(&self) -> Permutation {
        Permutation { forward: self.inverse.clone(), inverse: self.forward.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        let data = vec![10, 20, 30, 40, 50];
        assert_eq!(p.apply(&data).unwrap(), data);
        assert_eq!(p.invert(&data).unwrap(), data);
    }

    #[test]
    fn invert_restores_order() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 100, 1000] {
            let p = Permutation::random(n, &mut rng);
            let data: Vec<u32> = (0..n as u32).collect();
            let shuffled = p.apply(&data).unwrap();
            assert_eq!(p.invert(&shuffled).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn inverted_object_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Permutation::random(64, &mut rng);
        let q = p.inverted();
        let data: Vec<u32> = (0..64).collect();
        assert_eq!(q.apply(&p.apply(&data).unwrap()).unwrap(), data);
    }

    #[test]
    fn fresh_seeds_give_fresh_permutations() {
        // Paper Sec. III-C: different random seeds per round → different
        // permuted positions.
        let p1 = Permutation::random(256, &mut StdRng::seed_from_u64(10));
        let p2 = Permutation::random(256, &mut StdRng::seed_from_u64(11));
        assert_ne!(p1.forward_indices(), p2.forward_indices());
    }

    #[test]
    fn same_seed_reproduces() {
        let p1 = Permutation::random(64, &mut StdRng::seed_from_u64(7));
        let p2 = Permutation::random(64, &mut StdRng::seed_from_u64(7));
        assert_eq!(p1, p2);
    }

    #[test]
    fn validation_rejects_non_permutations() {
        assert!(Permutation::from_forward(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_forward(vec![0, 3]).is_err());
        assert!(Permutation::from_forward(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn length_mismatch_is_error() {
        let p = Permutation::identity(3);
        assert!(matches!(
            p.apply(&[1, 2]),
            Err(ObfuscateError::LengthMismatch { .. })
        ));
        assert!(p.invert(&[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn uniformity_smoke_test() {
        // Over many draws on 3 elements, all 6 orderings appear.
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = Permutation::random(3, &mut rng);
            seen.insert(p.forward_indices().to_vec());
        }
        assert_eq!(seen.len(), 6);
    }
}
