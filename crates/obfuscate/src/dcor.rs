//! Distance correlation (Székely, Rizzo & Bakirov 2007) — the information
//! leakage metric of paper Exp#5 (Table VI). The paper computes it with the
//! Python `dcor` package; this is a from-scratch reimplementation of the
//! same statistic for univariate samples.
//!
//! Given paired samples `x, y` of length `n`, with pairwise distance
//! matrices `a_jk = |x_j − x_k|` and `b_jk = |y_j − y_k|` double-centered
//! to `A` and `B`:
//!
//! * `dCov²(x, y) = (1/n²) Σ_jk A_jk · B_jk`
//! * `dCor(x, y)  = dCov(x, y) / √(dCov(x,x) · dCov(y,y))`
//!
//! `dCor = 1` for identical (affinely related) samples, `0` for
//! independent ones. The implementation streams the double-centered
//! products, using O(n) memory for the row means rather than
//! materializing the n×n matrices (tensor lengths reach 2¹³ in Exp#5).

/// Row means, grand mean of the pairwise |xi − xj| distance matrix.
fn distance_means(x: &[f64]) -> (Vec<f64>, f64) {
    let n = x.len();
    let mut row = vec![0.0; n];
    for j in 0..n {
        let mut s = 0.0;
        for k in 0..n {
            s += (x[j] - x[k]).abs();
        }
        row[j] = s / n as f64;
    }
    let grand = row.iter().sum::<f64>() / n as f64;
    (row, grand)
}

/// Squared distance covariance of two equal-length samples.
///
/// Panics if lengths differ or are zero.
pub fn distance_covariance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must be paired");
    assert!(!x.is_empty(), "empty samples");
    let n = x.len();
    let (ra, ga) = distance_means(x);
    let (rb, gb) = distance_means(y);
    let mut acc = 0.0;
    for j in 0..n {
        for k in 0..n {
            let a = (x[j] - x[k]).abs() - ra[j] - ra[k] + ga;
            let b = (y[j] - y[k]).abs() - rb[j] - rb[k] + gb;
            acc += a * b;
        }
    }
    // Centering can leave tiny negative residue from rounding.
    (acc / (n * n) as f64).max(0.0)
}

/// Distance correlation in `[0, 1]`. Returns `0` when either sample is
/// constant (zero distance variance).
pub fn distance_correlation(x: &[f64], y: &[f64]) -> f64 {
    let vxy = distance_covariance(x, y);
    let vx = distance_covariance(x, x);
    let vy = distance_covariance(y, y);
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (vxy / (vx * vy).sqrt()).sqrt().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_have_dcor_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.7 - 3.0).collect();
        let d = distance_correlation(&x, &x);
        assert!((d - 1.0).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn affine_transform_has_dcor_one() {
        // dCor is invariant to scaling and shifting.
        let x: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let d = distance_correlation(&x, &y);
        assert!((d - 1.0).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn independent_samples_have_low_dcor() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d = distance_correlation(&x, &y);
        assert!(d < 0.15, "d={d}");
    }

    #[test]
    fn detects_nonlinear_dependence() {
        // Pearson correlation of (x, x²) on symmetric x is ~0, but dCor
        // sees the dependence — the reason the paper uses this statistic.
        let x: Vec<f64> = (-25..25).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let d = distance_correlation(&x, &y);
        assert!(d > 0.4, "d={d}");
    }

    #[test]
    fn constant_sample_yields_zero() {
        let x = vec![3.0; 20];
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(distance_correlation(&x, &y), 0.0);
    }

    #[test]
    fn permutation_reduces_dcor_with_length() {
        // The Table VI trend: longer tensors → smaller dCor between the
        // original and its random permutation.
        let mut rng = StdRng::seed_from_u64(2);
        let lengths = [32usize, 128, 512, 2048];
        let dcors: Vec<f64> = lengths
            .iter()
            .map(|&n| {
                let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let perm = crate::Permutation::random(n, &mut rng);
                let y = perm.apply(&x).unwrap();
                distance_correlation(&x, &y)
            })
            .collect();
        // The long-tensor leakage is much smaller than the short-tensor
        // leakage (the Table VI trend); individual steps can jitter.
        assert!(dcors[3] < dcors[0] / 2.0, "dcors={dcors:?}");
        assert!(dcors.iter().all(|&d| d < 0.6), "dcors={dcors:?}");
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn mismatched_lengths_panic() {
        distance_covariance(&[1.0, 2.0], &[1.0]);
    }
}
