//! # pp-obfuscate
//!
//! PP-Stream's lightweight obfuscation protocol for non-linear operations
//! (paper Sec. III-C), plus the distance-correlation statistic used to
//! measure its residual information leakage (Exp#5, Table VI).
//!
//! The model provider reshapes each tensor into a one-dimensional vector
//! (lexicographic element order), randomly permutes the element positions,
//! and sends the permuted vector to the data provider. Element-wise
//! non-linear functions (ReLU, Sigmoid) commute with the permutation;
//! the model provider later applies the inverse permutation to restore
//! positions. A fresh random permutation is drawn per round (Steps 1.4
//! and 2.7 of Fig. 3), so positions are unlinkable across rounds.
//!
//! ```
//! use pp_obfuscate::{distance_correlation, Permutation};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let activations: Vec<f64> = (0..256).map(|i| (i as f64).sin()).collect();
//!
//! // Model provider: obfuscate before sending (Step 1.4)…
//! let perm = Permutation::random(activations.len(), &mut rng);
//! let obfuscated = perm.apply(&activations).unwrap();
//! // …data provider applies an element-wise function on permuted values…
//! let relu: Vec<f64> = obfuscated.iter().map(|&v| v.max(0.0)).collect();
//! // …model provider restores positions (Step 2.5).
//! let restored = perm.invert(&relu).unwrap();
//! assert_eq!(restored[3], activations[3].max(0.0));
//!
//! // Exp#5: the permuted view is only weakly correlated with the original.
//! let leak = distance_correlation(&activations, &obfuscated);
//! assert!(leak < 0.2, "dcor = {leak}");
//! ```

mod dcor;
mod permutation;

pub use dcor::{distance_correlation, distance_covariance};
pub use permutation::Permutation;

/// Errors from obfuscation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObfuscateError {
    /// The permutation length does not match the data length.
    LengthMismatch { permutation: usize, data: usize },
    /// The provided index vector is not a valid permutation.
    NotAPermutation,
}

impl std::fmt::Display for ObfuscateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObfuscateError::LengthMismatch { permutation, data } => write!(
                f,
                "permutation length {permutation} does not match data length {data}"
            ),
            ObfuscateError::NotAPermutation => write!(f, "indices do not form a permutation"),
        }
    }
}

impl std::error::Error for ObfuscateError {}
