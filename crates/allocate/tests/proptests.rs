//! Property tests for the allocation solver: every solution satisfies the
//! ILP constraints (Eqs. 5–8), and the solver never loses to the even
//! split on its own objective.

use pp_allocate::{even_allocation, pack_feasible, solve, LayerLoad, Role, ServerSpec, SolveConfig};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = (Vec<LayerLoad>, Vec<ServerSpec>)> {
    let layers = proptest::collection::vec(
        (prop_oneof![Just(Role::Linear), Just(Role::NonLinear)], 0.01f64..10.0),
        1..7,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(role, time)| LayerLoad { role, time })
            .collect::<Vec<_>>()
    });
    let servers = (1usize..3, 1usize..3, 1usize..6, 1usize..6).prop_map(|(nl, nn, cl, cn)| {
        let mut out = Vec::new();
        for _ in 0..nl {
            out.push(ServerSpec { role: Role::Linear, cores: cl });
        }
        for _ in 0..nn {
            out.push(ServerSpec { role: Role::NonLinear, cores: cn });
        }
        out
    });
    (layers, servers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solutions_satisfy_all_constraints((layers, servers) in arb_instance()) {
        let cfg = SolveConfig { hyperthreading: true, node_budget: 1 << 18 };
        if let Ok(alloc) = solve(&layers, &servers, cfg) {
            // Eq. 7: y_i >= 1.
            prop_assert!(alloc.threads.iter().all(|&y| y >= 1));
            // Eq. 5: every layer placed on exactly one (matching) server.
            prop_assert_eq!(alloc.server_of.len(), layers.len());
            let mut load = vec![0usize; servers.len()];
            for (i, (&srv, &y)) in alloc.server_of.iter().zip(&alloc.threads).enumerate() {
                prop_assert!(srv < servers.len());
                // Eq. 6: role separation.
                prop_assert_eq!(servers[srv].role, layers[i].role);
                load[srv] += y;
            }
            // Eq. 8: per-server capacity (×2 for hyper-threading).
            for (j, &l) in load.iter().enumerate() {
                prop_assert!(l <= servers[j].cores * 2, "server {j}: {l}");
            }
        }
    }

    #[test]
    fn solver_never_worse_than_even_split((layers, servers) in arb_instance()) {
        let cfg = SolveConfig { hyperthreading: false, node_budget: 1 << 18 };
        let lb = solve(&layers, &servers, cfg);
        let even = even_allocation(&layers, &servers, false);
        if let (Ok(lb), Ok(even)) = (lb, even) {
            prop_assert!(
                lb.objective <= even.objective * (1.0 + 1e-6) + 1e-9,
                "lb {} > even {}",
                lb.objective,
                even.objective
            );
        }
    }

    #[test]
    fn feasibility_matches_slot_arithmetic((layers, servers) in arb_instance()) {
        // solve() fails iff some role has more layers than thread slots
        // (with at least one server of each needed role present).
        let cfg = SolveConfig { hyperthreading: false, node_budget: 1 << 16 };
        let result = solve(&layers, &servers, cfg);
        for role in [Role::Linear, Role::NonLinear] {
            let need = layers.iter().filter(|l| l.role == role).count();
            let have: usize = servers
                .iter()
                .filter(|s| s.role == role)
                .map(|s| s.cores)
                .sum();
            if need > have {
                prop_assert!(result.is_err());
            }
        }
    }

    #[test]
    fn binpack_assignments_respect_capacities(
        sizes in proptest::collection::vec(1usize..8, 0..10),
        caps in proptest::collection::vec(1usize..12, 1..5),
    ) {
        if let Some(assign) = pack_feasible(&sizes, &caps) {
            let mut load = vec![0usize; caps.len()];
            for (i, &b) in assign.iter().enumerate() {
                load[b] += sizes[i];
            }
            for (l, c) in load.iter().zip(&caps) {
                prop_assert!(l <= c);
            }
        } else {
            // At minimum, the total must not fit exactly into one bin
            // each... weaker check: total > capacity implies None is
            // mandatory; None with plenty of room would be a bug.
            let total: usize = sizes.iter().sum();
            let max_item = sizes.iter().max().copied().unwrap_or(0);
            let cap_sum: usize = caps.iter().sum();
            let cap_max = caps.iter().max().copied().unwrap_or(0);
            prop_assert!(
                total > cap_sum || max_item > cap_max || total * 2 > cap_sum,
                "packer gave up with slack: sizes={sizes:?} caps={caps:?}"
            );
        }
    }
}
