//! Branch-and-bound solver for the load-balancing ILP (paper Eqs. 4–8).

use crate::binpack::pack_feasible;
use crate::{AllocateError, LayerLoad, Role, ServerSpec};

/// Solver knobs.
#[derive(Clone, Copy, Debug)]
pub struct SolveConfig {
    /// Whether each physical core may run two threads (Eq. 8's `×2`).
    pub hyperthreading: bool,
    /// Search-node budget; the solver returns the best allocation found
    /// when exhausted (instances at paper scale finish well within it).
    pub node_budget: u64,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig { hyperthreading: true, node_budget: 5_000_000 }
    }
}

/// A solved allocation.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Threads per layer (`y_i`).
    pub threads: Vec<usize>,
    /// Hosting server per layer (`j` with `x_{i,j} = 1`).
    pub server_of: Vec<usize>,
    /// Achieved objective value (Eq. 4).
    pub objective: f64,
}

impl Allocation {
    /// The bottleneck per-thread time `max_i T_i / y_i` — the pipeline's
    /// steady-state throughput limit.
    pub fn bottleneck(&self, layers: &[LayerLoad]) -> f64 {
        layers
            .iter()
            .zip(&self.threads)
            .map(|(l, &y)| l.time / y as f64)
            .fold(0.0, f64::max)
    }
}

/// Eq. 4: `Σ_i Σ_i' |T_i/y_i − T_i'/y_i'|` over ordered pairs.
pub fn pairwise_imbalance(times: &[f64], threads: &[usize]) -> f64 {
    let t: Vec<f64> = times.iter().zip(threads).map(|(&ti, &y)| ti / y as f64).collect();
    let mut sum = 0.0;
    for i in 0..t.len() {
        for j in 0..t.len() {
            sum += (t[i] - t[j]).abs();
        }
    }
    sum
}

/// Solves the allocation ILP exactly (within the node budget).
pub fn solve(
    layers: &[LayerLoad],
    servers: &[ServerSpec],
    config: SolveConfig,
) -> Result<Allocation, AllocateError> {
    if layers.is_empty() {
        return Err(AllocateError::Invalid("no layers".into()));
    }
    if servers.is_empty() {
        return Err(AllocateError::Invalid("no servers".into()));
    }
    if servers.iter().any(|s| s.cores == 0) {
        return Err(AllocateError::Invalid("server with zero cores".into()));
    }
    if layers.iter().any(|l| l.time <= 0.0 || !l.time.is_finite()) {
        return Err(AllocateError::Invalid("layer times must be positive".into()));
    }
    let factor = if config.hyperthreading { 2 } else { 1 };

    // Per-role capacity data.
    let caps = |role: Role| -> Vec<usize> {
        servers
            .iter()
            .filter(|s| s.role == role)
            .map(|s| s.cores * factor)
            .collect()
    };
    let lin_caps = caps(Role::Linear);
    let non_caps = caps(Role::NonLinear);
    let role_total = |c: &[usize]| c.iter().sum::<usize>();
    let role_max = |c: &[usize]| c.iter().copied().max().unwrap_or(0);

    for role in [Role::Linear, Role::NonLinear] {
        let count = layers.iter().filter(|l| l.role == role).count();
        let c = if role == Role::Linear { &lin_caps } else { &non_caps };
        if count > role_total(c) {
            return Err(AllocateError::Infeasible(format!(
                "{count} {role:?} layers exceed {role:?} thread capacity {}",
                role_total(c)
            )));
        }
    }

    // Search order: heaviest layers first (their y choices matter most).
    let mut order: Vec<usize> = (0..layers.len()).collect();
    order.sort_by(|&a, &b| layers[b].time.partial_cmp(&layers[a].time).expect("finite"));

    // Balanced per-thread target used to order candidate y values.
    let total_time: f64 = layers.iter().map(|l| l.time).sum();
    let total_cap = role_total(&lin_caps) + role_total(&non_caps);
    let tau = total_time / total_cap.max(1) as f64;

    // Candidate y values per layer, best-target-fit first.
    let candidates: Vec<Vec<usize>> = layers
        .iter()
        .map(|l| {
            let (maxcap, total) = match l.role {
                Role::Linear => (role_max(&lin_caps), role_total(&lin_caps)),
                Role::NonLinear => (role_max(&non_caps), role_total(&non_caps)),
            };
            let hi = maxcap.min(total);
            let mut ys: Vec<usize> = (1..=hi.max(1)).collect();
            ys.sort_by(|&a, &b| {
                let da = (l.time / a as f64 - tau).abs();
                let db = (l.time / b as f64 - tau).abs();
                da.partial_cmp(&db).expect("finite")
            });
            ys
        })
        .collect();

    // Initial incumbent: proportional allocation rounded into feasibility.
    let mut best = initial_incumbent(layers, &lin_caps, &non_caps)?;
    let mut best_obj = pairwise_imbalance(
        &layers.iter().map(|l| l.time).collect::<Vec<_>>(),
        &best,
    );

    // DFS over y assignments in `order`, pruning on partial objective.
    struct Ctx<'a> {
        layers: &'a [LayerLoad],
        order: &'a [usize],
        candidates: &'a [Vec<usize>],
        lin_caps: &'a [usize],
        non_caps: &'a [usize],
        lin_total: usize,
        non_total: usize,
        nodes: u64,
        budget: u64,
        best: Vec<usize>,
        best_obj: f64,
        /// Secondary objective: total per-thread service time `Σ T_i/y_i`
        /// — breaks Eq. 4's degeneracy (all-equal `y` vectors share the
        /// same primary objective) in favour of actually using the
        /// available threads. The paper notes alternative objectives are
        /// applicable (Sec. IV-C).
        best_secondary: f64,
    }

    fn dfs(ctx: &mut Ctx, depth: usize, y: &mut Vec<usize>, partial: f64, lin_used: usize, non_used: usize) {
        if ctx.nodes >= ctx.budget {
            return;
        }
        ctx.nodes += 1;
        // Allow ties through so the secondary objective can improve.
        if partial > ctx.best_obj * (1.0 + 1e-9) + 1e-12 {
            return;
        }
        if depth == ctx.order.len() {
            // Leaf: exact feasibility via bin-packing per role.
            let lin_sizes: Vec<usize> = ctx
                .order
                .iter()
                .enumerate()
                .filter(|&(_, &i)| ctx.layers[i].role == Role::Linear)
                .map(|(d, _)| y[d])
                .collect();
            let non_sizes: Vec<usize> = ctx
                .order
                .iter()
                .enumerate()
                .filter(|&(_, &i)| ctx.layers[i].role == Role::NonLinear)
                .map(|(d, _)| y[d])
                .collect();
            let secondary: f64 = ctx
                .order
                .iter()
                .enumerate()
                .map(|(d, &i)| ctx.layers[i].time / y[d] as f64)
                .sum();
            let strictly_better = partial < ctx.best_obj * (1.0 - 1e-9) - 1e-12;
            let tied = !strictly_better && partial <= ctx.best_obj * (1.0 + 1e-9) + 1e-12;
            if !(strictly_better || (tied && secondary < ctx.best_secondary)) {
                return;
            }
            if pack_feasible(&lin_sizes, ctx.lin_caps).is_none()
                || pack_feasible(&non_sizes, ctx.non_caps).is_none()
            {
                return;
            }
            ctx.best_obj = partial;
            ctx.best_secondary = secondary;
            let mut out = vec![0usize; ctx.layers.len()];
            for (d, &i) in ctx.order.iter().enumerate() {
                out[i] = y[d];
            }
            ctx.best = out;
            return;
        }
        let layer = ctx.order[depth];
        let role = ctx.layers[layer].role;
        // Remaining layers of this role still to place (including this).
        let remaining_same_role = ctx.order[depth..]
            .iter()
            .filter(|&&i| ctx.layers[i].role == role)
            .count();
        let (used, total) = match role {
            Role::Linear => (lin_used, ctx.lin_total),
            Role::NonLinear => (non_used, ctx.non_total),
        };
        let slack = total - used;
        for &cand in &ctx.candidates[layer] {
            // Capacity relaxation: leave ≥1 slot for each later same-role
            // layer.
            if cand + (remaining_same_role - 1) > slack {
                continue;
            }
            // Incremental objective: |t_new − t_d| against all assigned.
            let t_new = ctx.layers[layer].time / cand as f64;
            let mut delta = 0.0;
            for (d, &yd) in y.iter().enumerate() {
                let t_d = ctx.layers[ctx.order[d]].time / yd as f64;
                delta += 2.0 * (t_new - t_d).abs();
            }
            y.push(cand);
            let (lu, nu) = match role {
                Role::Linear => (lin_used + cand, non_used),
                Role::NonLinear => (lin_used, non_used + cand),
            };
            dfs(ctx, depth + 1, y, partial + delta, lu, nu);
            y.pop();
        }
    }

    let mut ctx = Ctx {
        layers,
        order: &order,
        candidates: &candidates,
        lin_caps: &lin_caps,
        non_caps: &non_caps,
        lin_total: role_total(&lin_caps),
        non_total: role_total(&non_caps),
        nodes: 0,
        budget: config.node_budget,
        best: best.clone(),
        best_obj,
        best_secondary: layers
            .iter()
            .zip(&best)
            .map(|(l, &y)| l.time / y as f64)
            .sum(),
    };
    let mut y = Vec::with_capacity(layers.len());
    dfs(&mut ctx, 0, &mut y, 0.0, 0, 0);
    best = ctx.best;
    best_obj = ctx.best_obj;

    // Materialize server placements for the winning y.
    let server_of = place(layers, servers, factor, &best)?;
    Ok(Allocation { threads: best, server_of, objective: best_obj })
}

/// Proportional-to-load initial incumbent, guaranteed bin-packable.
fn initial_incumbent(
    layers: &[LayerLoad],
    lin_caps: &[usize],
    non_caps: &[usize],
) -> Result<Vec<usize>, AllocateError> {
    let mut y = vec![1usize; layers.len()];
    for role in [Role::Linear, Role::NonLinear] {
        let caps = if role == Role::Linear { lin_caps } else { non_caps };
        let ids: Vec<usize> = (0..layers.len()).filter(|&i| layers[i].role == role).collect();
        if ids.is_empty() {
            continue;
        }
        let total: usize = caps.iter().sum();
        let maxcap = caps.iter().copied().max().unwrap_or(0);
        let time_sum: f64 = ids.iter().map(|&i| layers[i].time).sum();
        // Proportional shares, clamped to [1, maxcap].
        for &i in &ids {
            let share = (layers[i].time / time_sum * total as f64).floor() as usize;
            y[i] = share.clamp(1, maxcap.max(1));
        }
        // Shrink until bin-packable (always terminates at all-ones).
        loop {
            let sizes: Vec<usize> = ids.iter().map(|&i| y[i]).collect();
            if pack_feasible(&sizes, caps).is_some() {
                break;
            }
            let &imax = ids
                .iter()
                .max_by_key(|&&i| y[i])
                .expect("non-empty role group");
            if y[imax] == 1 {
                return Err(AllocateError::Infeasible(format!(
                    "cannot pack {role:?} layers one-thread-each"
                )));
            }
            y[imax] -= 1;
        }
    }
    Ok(y)
}

/// Computes `x_{i,j}`: packs each role's thread counts onto its servers.
fn place(
    layers: &[LayerLoad],
    servers: &[ServerSpec],
    factor: usize,
    y: &[usize],
) -> Result<Vec<usize>, AllocateError> {
    let mut server_of = vec![usize::MAX; layers.len()];
    for role in [Role::Linear, Role::NonLinear] {
        let ids: Vec<usize> = (0..layers.len()).filter(|&i| layers[i].role == role).collect();
        if ids.is_empty() {
            continue;
        }
        let sids: Vec<usize> = (0..servers.len()).filter(|&j| servers[j].role == role).collect();
        let caps: Vec<usize> = sids.iter().map(|&j| servers[j].cores * factor).collect();
        let sizes: Vec<usize> = ids.iter().map(|&i| y[i]).collect();
        let assign = pack_feasible(&sizes, &caps).ok_or_else(|| {
            AllocateError::Infeasible(format!("final packing failed for {role:?}"))
        })?;
        for (k, &i) in ids.iter().enumerate() {
            server_of[i] = sids[assign[k]];
        }
    }
    Ok(server_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(time: f64) -> LayerLoad {
        LayerLoad { role: Role::Linear, time }
    }
    fn non(time: f64) -> LayerLoad {
        LayerLoad { role: Role::NonLinear, time }
    }
    fn servers(lin_cores: &[usize], non_cores: &[usize]) -> Vec<ServerSpec> {
        lin_cores
            .iter()
            .map(|&c| ServerSpec { role: Role::Linear, cores: c })
            .chain(non_cores.iter().map(|&c| ServerSpec { role: Role::NonLinear, cores: c }))
            .collect()
    }

    #[test]
    fn balances_proportional_to_load() {
        // Two linear layers, one 4× heavier: it should get ~4× threads.
        let layers = vec![lin(8.0), lin(2.0)];
        let srv = servers(&[5], &[]);
        let a = solve(&layers, &srv, SolveConfig { hyperthreading: false, node_budget: 1 << 20 })
            .unwrap();
        assert_eq!(a.threads, vec![4, 1]);
        assert!(a.objective < 1e-9, "perfectly balanced: {}", a.objective);
    }

    #[test]
    fn respects_role_separation() {
        let layers = vec![lin(1.0), non(1.0)];
        let srv = servers(&[2], &[2]);
        let a = solve(&layers, &srv, SolveConfig::default()).unwrap();
        assert_eq!(a.server_of[0], 0);
        assert_eq!(a.server_of[1], 1);
    }

    #[test]
    fn hyperthreading_doubles_slots() {
        let layers = vec![lin(4.0), lin(4.0)];
        let srv = servers(&[2], &[]);
        let no_ht =
            solve(&layers, &srv, SolveConfig { hyperthreading: false, node_budget: 1 << 20 })
                .unwrap();
        let ht = solve(&layers, &srv, SolveConfig { hyperthreading: true, node_budget: 1 << 20 })
            .unwrap();
        assert_eq!(no_ht.threads.iter().sum::<usize>(), 2);
        assert_eq!(ht.threads.iter().sum::<usize>(), 4);
    }

    #[test]
    fn beats_even_split_on_skewed_load() {
        // The Exp#3 effect: skewed layer times → LB beats even split.
        let layers = vec![lin(16.0), lin(1.0), non(4.0), non(1.0)];
        let srv = servers(&[6, 6], &[6]);
        let cfg = SolveConfig { hyperthreading: false, node_budget: 1 << 22 };
        let lb = solve(&layers, &srv, cfg).unwrap();
        let even = crate::even_allocation(&layers, &srv, false).unwrap();
        assert!(
            lb.bottleneck(&layers) <= even.bottleneck(&layers) + 1e-12,
            "lb {} vs even {}",
            lb.bottleneck(&layers),
            even.bottleneck(&layers)
        );
        assert!(lb.objective <= even.objective + 1e-12);
    }

    #[test]
    fn layer_cannot_exceed_single_server() {
        // One layer, two 2-core servers: y is capped at one server's slots.
        let layers = vec![lin(100.0)];
        let srv = servers(&[2, 2], &[]);
        let a = solve(&layers, &srv, SolveConfig { hyperthreading: false, node_budget: 1 << 20 })
            .unwrap();
        assert_eq!(a.threads[0], 2);
    }

    #[test]
    fn packing_constraints_hold() {
        let layers = vec![lin(5.0), lin(5.0), lin(5.0), non(2.0), non(2.0)];
        let srv = servers(&[2, 2], &[3]);
        let cfg = SolveConfig { hyperthreading: false, node_budget: 1 << 22 };
        let a = solve(&layers, &srv, cfg).unwrap();
        // Per-server thread totals within capacity; roles separated.
        let mut load = vec![0usize; srv.len()];
        for (i, (&s, &y)) in a.server_of.iter().zip(&a.threads).enumerate() {
            assert_eq!(srv[s].role, layers[i].role, "layer {i} role");
            load[s] += y;
        }
        for (j, l) in load.iter().enumerate() {
            assert!(*l <= srv[j].cores, "server {j} overloaded: {l}");
        }
        // Eq. 7: at least one thread each.
        assert!(a.threads.iter().all(|&y| y >= 1));
    }

    #[test]
    fn infeasible_inputs_rejected() {
        assert!(solve(&[], &servers(&[1], &[]), SolveConfig::default()).is_err());
        assert!(solve(&[lin(1.0)], &[], SolveConfig::default()).is_err());
        assert!(solve(&[lin(0.0)], &servers(&[1], &[]), SolveConfig::default()).is_err());
        // Three linear layers, 2 slots total.
        let r = solve(
            &[lin(1.0), lin(1.0), lin(1.0)],
            &servers(&[1], &[]),
            SolveConfig { hyperthreading: false, node_budget: 1 << 16 },
        );
        assert!(r.is_err());
    }

    #[test]
    fn paper_scale_instance_solves() {
        // VGG-scale: ~14 merged layers, 9 servers (6 model, 3 data).
        let mut layers = Vec::new();
        for k in 0..7 {
            layers.push(lin(1.0 + k as f64 * 0.7));
            layers.push(non(0.2 + k as f64 * 0.05));
        }
        let srv = servers(&[24, 24, 24, 24, 24, 24], &[24, 24, 24]);
        let a = solve(&layers, &srv, SolveConfig::default()).unwrap();
        assert_eq!(a.threads.len(), 14);
        assert!(a.objective.is_finite());
        // Heavier linear layers get at least as many threads.
        assert!(a.threads[12] >= a.threads[0]);
    }

    #[test]
    fn pairwise_imbalance_zero_when_equal() {
        assert!(pairwise_imbalance(&[2.0, 4.0], &[1, 2]) < 1e-12);
        assert!(pairwise_imbalance(&[2.0, 4.0], &[1, 1]) > 0.0);
    }
}
