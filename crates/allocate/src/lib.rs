//! # pp-allocate
//!
//! Load-balanced resource allocation (paper Sec. IV-C): given the offline
//! profile `T_i` of each merged primitive layer and the per-server core
//! budgets, find the server assignment `x_{i,j}` and thread counts `y_i`
//! minimizing the total pairwise imbalance
//!
//! ```text
//!   min Σ_i Σ_i' | T_i/y_i − T_i'/y_i' |
//! ```
//!
//! subject to (Eqs. 5–8): every layer on exactly one server; each server
//! hosting only linear or only non-linear layers (privacy); at least one
//! thread per layer; and per-server thread totals bounded by `2·c_j`
//! (hyper-threading) or `c_j`.
//!
//! The paper solves this with Gurobi's branch-and-bound; this crate
//! implements an exact branch-and-bound directly (DESIGN.md §3): the
//! objective depends only on the `y` vector, so we search `y` with
//! partial-objective pruning and check server feasibility by bin-packing
//! thread counts into core budgets. Instances are tiny (ℓ ≤ ~20, s ≤ 9),
//! so exact search is fast.
//!
//! ```
//! use pp_allocate::{solve, LayerLoad, Role, ServerSpec, SolveConfig};
//!
//! // A heavy and a light linear stage plus one non-linear stage.
//! let layers = [
//!     LayerLoad { role: Role::Linear, time: 8.0 },
//!     LayerLoad { role: Role::Linear, time: 2.0 },
//!     LayerLoad { role: Role::NonLinear, time: 1.0 },
//! ];
//! let servers = [
//!     ServerSpec { role: Role::Linear, cores: 5 },
//!     ServerSpec { role: Role::NonLinear, cores: 2 },
//! ];
//! let alloc = solve(&layers, &servers,
//!     SolveConfig { hyperthreading: false, node_budget: 1 << 20 }).unwrap();
//! // The heavy stage gets 4× the threads of the light one (8.0 / 2.0).
//! assert_eq!(alloc.threads[0], 4 * alloc.threads[1]);
//! ```

mod binpack;
mod solver;

pub use binpack::pack_feasible;
pub use solver::{solve, Allocation, SolveConfig};

/// Linear layers execute on the model provider's servers, non-linear on
/// the data provider's (constraint Eq. 6 keeps them apart).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    Linear,
    NonLinear,
}

/// One merged primitive layer's offline profile.
#[derive(Clone, Copy, Debug)]
pub struct LayerLoad {
    /// Linear vs non-linear (decides the eligible server set).
    pub role: Role,
    /// Profiled single-thread execution time `T_i`, in seconds.
    pub time: f64,
}

/// One server's resources.
#[derive(Clone, Copy, Debug)]
pub struct ServerSpec {
    /// Whether this server belongs to the model provider (`Linear`) or
    /// the data provider (`NonLinear`).
    pub role: Role,
    /// Physical CPU cores `c_j`.
    pub cores: usize,
}

/// Errors from allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocateError {
    /// No feasible assignment exists (e.g. more layers than thread slots).
    Infeasible(String),
    /// Invalid input (empty layer/server list, zero cores…).
    Invalid(String),
}

impl std::fmt::Display for AllocateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocateError::Infeasible(s) => write!(f, "infeasible: {s}"),
            AllocateError::Invalid(s) => write!(f, "invalid input: {s}"),
        }
    }
}

impl std::error::Error for AllocateError {}

/// The "without load balancing" baseline of Exp#2/Exp#3: distribute each
/// role's thread slots evenly across that role's layers (some layers get
/// one more thread when the division is uneven), assigning greedily to
/// servers in order.
pub fn even_allocation(
    layers: &[LayerLoad],
    servers: &[ServerSpec],
    hyperthreading: bool,
) -> Result<Allocation, AllocateError> {
    let factor = if hyperthreading { 2 } else { 1 };
    let mut threads = vec![0usize; layers.len()];
    let mut server_of = vec![usize::MAX; layers.len()];
    for role in [Role::Linear, Role::NonLinear] {
        let layer_ids: Vec<usize> =
            (0..layers.len()).filter(|&i| layers[i].role == role).collect();
        if layer_ids.is_empty() {
            continue;
        }
        let server_ids: Vec<usize> =
            (0..servers.len()).filter(|&j| servers[j].role == role).collect();
        let capacity: usize = server_ids.iter().map(|&j| servers[j].cores * factor).sum();
        if capacity < layer_ids.len() {
            return Err(AllocateError::Infeasible(format!(
                "{} {role:?} layers need {} thread slots, have {capacity}",
                layer_ids.len(),
                layer_ids.len()
            )));
        }
        let per = capacity / layer_ids.len();
        let extra = capacity % layer_ids.len();
        // Greedy first-fit of the even thread counts onto servers.
        let mut remaining: Vec<usize> =
            server_ids.iter().map(|&j| servers[j].cores * factor).collect();
        for (k, &i) in layer_ids.iter().enumerate() {
            let want = per + usize::from(k < extra);
            // Find a server with room for the whole allocation, else the
            // one with the most room (threads can be trimmed to fit).
            let (slot, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &r)| r)
                .expect("non-empty server list");
            let give = want.min(remaining[slot]).max(1);
            threads[i] = give;
            remaining[slot] -= give.min(remaining[slot]);
            server_of[i] = server_ids[slot];
        }
    }
    let objective = solver::pairwise_imbalance(
        &layers.iter().map(|l| l.time).collect::<Vec<_>>(),
        &threads,
    );
    Ok(Allocation { threads, server_of, objective })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_allocation_splits_capacity() {
        let layers = vec![
            LayerLoad { role: Role::Linear, time: 10.0 },
            LayerLoad { role: Role::Linear, time: 1.0 },
            LayerLoad { role: Role::NonLinear, time: 0.5 },
        ];
        let servers = vec![
            ServerSpec { role: Role::Linear, cores: 4 },
            ServerSpec { role: Role::NonLinear, cores: 2 },
        ];
        let alloc = even_allocation(&layers, &servers, false).unwrap();
        // Linear capacity 4 split across 2 layers → 2 threads each.
        assert_eq!(alloc.threads[0], 2);
        assert_eq!(alloc.threads[1], 2);
        assert_eq!(alloc.threads[2], 2);
        // Role separation honoured.
        assert_eq!(alloc.server_of[0], 0);
        assert_eq!(alloc.server_of[2], 1);
    }

    #[test]
    fn even_allocation_hyperthreading_doubles() {
        let layers = vec![LayerLoad { role: Role::Linear, time: 1.0 }];
        let servers = vec![ServerSpec { role: Role::Linear, cores: 3 }];
        let a = even_allocation(&layers, &servers, true).unwrap();
        assert_eq!(a.threads[0], 6);
    }

    #[test]
    fn even_allocation_infeasible() {
        let layers = vec![
            LayerLoad { role: Role::Linear, time: 1.0 },
            LayerLoad { role: Role::Linear, time: 1.0 },
            LayerLoad { role: Role::Linear, time: 1.0 },
        ];
        let servers = vec![ServerSpec { role: Role::Linear, cores: 1 }];
        assert!(even_allocation(&layers, &servers, false).is_err());
    }
}
