//! Exact bin-packing feasibility: can thread counts `y_i` be placed onto
//! servers with capacities `cap_j` such that each layer sits wholly on one
//! server? (Constraint Eqs. 5 + 8 of the ILP.)

/// Returns an assignment `layer → bin index` if the item sizes fit, else
/// `None`. First-fit-decreasing fast path, exact DFS fallback — instance
/// sizes are ≤ ~20 items / ≤ 9 bins.
pub fn pack_feasible(sizes: &[usize], capacities: &[usize]) -> Option<Vec<usize>> {
    if sizes.is_empty() {
        return Some(Vec::new());
    }
    if capacities.is_empty() {
        return None;
    }
    let total: usize = sizes.iter().sum();
    if total > capacities.iter().sum() {
        return None;
    }

    // Sort items descending (remembering original positions).
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]));

    // First-fit-decreasing.
    let mut remaining = capacities.to_vec();
    let mut assign = vec![usize::MAX; sizes.len()];
    let mut ok = true;
    for &i in &order {
        match remaining.iter().position(|&r| r >= sizes[i]) {
            Some(j) => {
                remaining[j] -= sizes[i];
                assign[i] = j;
            }
            None => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Some(assign);
    }

    // Exact DFS with symmetry pruning on equal-remaining bins.
    let mut remaining = capacities.to_vec();
    let mut assign = vec![usize::MAX; sizes.len()];
    if dfs(&order, sizes, &mut remaining, &mut assign, 0) {
        Some(assign)
    } else {
        None
    }
}

fn dfs(
    order: &[usize],
    sizes: &[usize],
    remaining: &mut [usize],
    assign: &mut [usize],
    depth: usize,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let item = order[depth];
    let size = sizes[item];
    let mut tried: Vec<usize> = Vec::with_capacity(remaining.len());
    for j in 0..remaining.len() {
        if remaining[j] < size || tried.contains(&remaining[j]) {
            continue; // too small, or symmetric to an already-tried bin
        }
        tried.push(remaining[j]);
        remaining[j] -= size;
        assign[item] = j;
        if dfs(order, sizes, remaining, assign, depth + 1) {
            return true;
        }
        remaining[j] += size;
        assign[item] = usize::MAX;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(pack_feasible(&[], &[4]), Some(vec![]));
        assert!(pack_feasible(&[1], &[]).is_none());
        assert!(pack_feasible(&[5], &[4]).is_none());
        assert!(pack_feasible(&[4], &[4]).is_some());
    }

    #[test]
    fn exact_fit_multi_bin() {
        let assign = pack_feasible(&[3, 3, 2, 2], &[5, 5]).unwrap();
        let mut loads = [0usize; 2];
        for (i, &b) in assign.iter().enumerate() {
            loads[b] += [3, 3, 2, 2][i];
        }
        assert_eq!(loads, [5, 5]);
    }

    #[test]
    fn requires_backtracking() {
        // First-fit-decreasing fails here (4 lands in the cap-6 bin,
        // leaving no home for the two 3s), but 3+3 → bin 0 and 4 → bin 1
        // is feasible — exercises the exact DFS fallback.
        let sizes = [4, 3, 3];
        let caps = [6, 4];
        let assign = pack_feasible(&sizes, &caps).unwrap();
        let mut loads = vec![0usize; caps.len()];
        for (i, &b) in assign.iter().enumerate() {
            loads[b] += sizes[i];
        }
        for (l, c) in loads.iter().zip(&caps) {
            assert!(l <= c, "loads={loads:?}");
        }
    }

    #[test]
    fn infeasible_despite_total_capacity() {
        // Totals fit but no partition exists.
        assert!(pack_feasible(&[4, 3, 3], &[4, 6]).is_some());
        assert!(pack_feasible(&[4, 4, 4], &[6, 6]).is_none());
        assert!(pack_feasible(&[3, 3], &[5, 5, 5]).is_some());
    }

    #[test]
    fn assignment_respects_capacities_randomized() {
        // Deterministic pseudo-random instances.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..50 {
            let n = next() % 8 + 1;
            let sizes: Vec<usize> = (0..n).map(|_| next() % 5 + 1).collect();
            let bins: Vec<usize> = (0..next() % 3 + 1).map(|_| next() % 10 + 1).collect();
            if let Some(assign) = pack_feasible(&sizes, &bins) {
                let mut loads = vec![0usize; bins.len()];
                for (i, &b) in assign.iter().enumerate() {
                    loads[b] += sizes[i];
                }
                for (l, c) in loads.iter().zip(&bins) {
                    assert!(l <= c);
                }
            }
        }
    }
}
