#!/bin/sh
# Tier-1 CI gate: release build, test suite, and lint-clean clippy.
# Run from the repository root:
#
#   ./scripts/ci.sh                  # full gate
#   ./scripts/ci.sh --serving-gate   # serving gate only (64-client smoke)
#   ./scripts/ci.sh --crash-gate     # crash gate only (SIGKILL + warm restart)
#   ./scripts/ci.sh --fuzz-gate      # fuzz gate only (seeded wire fuzzing + governor)
set -eu

cd "$(dirname "$0")/.."

# Serving gate: 64 concurrent sessions through the event loop, failing
# on client/server counter mismatch, batched per-item compute > 1.25x
# per-session, or p99 > 3x the committed BENCH_serving.json baseline.
run_serving_gate() {
    echo "==> serving gate: 64-client smoke, counters balanced, p99 vs BENCH_serving.json"
    cargo run --release -p pp-bench --bin bench_serving -- --smoke
    cargo test -p pp-stream --test soak -q
}

# Crash gate: SIGKILL a real server child mid-stream under two fixed
# seeded schedules (one per fsync policy), warm-restart it on the same
# journal, and require bit-identical classifications plus exact
# client/server replay-counter agreement — on both serve paths. Then
# prove journaling stays opt-in: with no journal configured, the chaos
# suite must behave exactly as before the journal existed.
run_crash_gate() {
    echo "==> crash gate: SIGKILL + journal warm restart, event loop on and off"
    PP_EVLOOP=1 cargo test -p pp-stream --test crash -q
    PP_EVLOOP=0 cargo test -p pp-stream --test crash -q
    echo "==> crash gate: journaling disabled leaves the serve path unchanged"
    PP_FAULT_SEED=1 cargo test -p pp-stream --test chaos -q -- \
      chaos_kill_every expired_session_rejects_resume
}

# Fuzz gate: seeded structure-aware wire fuzzing against a live server
# on both serve paths under two fixed seeds — no panics, no hangs past
# the watchdog, inflated prefixes refused at the governor ceiling —
# plus the adversarial-peer governor tests (oversize prefix survival,
# slow-consumer eviction + resume). Then the existing chaos seeds are
# re-run once with explicit (tightened) governor budgets to prove the
# limits don't disturb well-behaved fault-injected traffic.
run_fuzz_gate() {
    echo "==> fuzz gate: seeded wire fuzzing, both serve paths, seeds 11 and 17"
    for seed in 11 17; do
        for ev in 0 1; do
            PP_FUZZ_SEED=$seed PP_EVLOOP=$ev cargo test -p pp-stream --test fuzz -q
            PP_EVLOOP=$ev cargo test -p pp-stream --test governor -q
        done
    done
    echo "==> fuzz gate: chaos seeds unchanged under explicit governor budgets"
    PP_MAX_FRAME=$((256 * 1024 * 1024)) \
    PP_WRITE_BACKLOG=$((32 * 1024 * 1024)) \
    PP_MEM_BUDGET=$((512 * 1024 * 1024)) \
    PP_FAULT_SEED=1 cargo test -p pp-stream --test chaos -q
}

case "${1:-}" in
--serving-gate)
    run_serving_gate
    echo "==> serving gate passed"
    exit 0
    ;;
--crash-gate)
    run_crash_gate
    echo "==> crash gate passed"
    exit 0
    ;;
--fuzz-gate)
    run_fuzz_gate
    echo "==> fuzz gate passed"
    exit 0
    ;;
esac

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> loopback two-process deployment test"
cargo test -p pp-stream --test deployment -q
cargo run --release --example distributed_inference

echo "==> chaos soak under two fixed fault seeds"
PP_FAULT_SEED=1 cargo test -p pp-stream --test chaos -q
PP_FAULT_SEED=2 cargo test -p pp-stream --test chaos -q

echo "==> overload protection: watchdog, busy rejection, quarantine, saturation"
PP_FAULT_SEED=3 cargo test -p pp-stream --test chaos -q -- \
  chaos_stalled_reads_recovered_by_watchdog_soak \
  chaos_busy_rejection_is_retried_after_backoff \
  chaos_poison_item_quarantined_stream_survives \
  chaos_saturation_sheds_excess_clients_without_failures
cargo test -p pp-stream --test deployment -q -- deadline inflight_cap budget

run_crash_gate

run_fuzz_gate

echo "==> fault injection compiles out cleanly"
cargo build -p pp-stream --no-default-features

echo "==> kernel gate: fused dot <= naive fold, fixed-base refill <= pow_mod refill,"
echo "    parallel CRT decrypt <= sequential (15% grace on single-core hosts)"
cargo run --release -p pp-bench --bin bench_kernels -- --smoke

echo "==> packed-dot gate: per-item packed <= unpacked at batch >= 8, >= 4x at batch 32"
cargo run --release -p pp-bench --bin bench_kernels -- --packed-gate

run_serving_gate

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI gate passed"
