#!/bin/sh
# Tier-1 CI gate: release build, test suite, and lint-clean clippy.
# Run from the repository root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> loopback two-process deployment test"
cargo test -p pp-stream --test deployment -q
cargo run --release --example distributed_inference

echo "==> chaos soak under two fixed fault seeds"
PP_FAULT_SEED=1 cargo test -p pp-stream --test chaos -q
PP_FAULT_SEED=2 cargo test -p pp-stream --test chaos -q

echo "==> fault injection compiles out cleanly"
cargo build -p pp-stream --no-default-features

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI gate passed"
