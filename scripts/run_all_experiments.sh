#!/usr/bin/env bash
# Regenerates every table and figure of the PP-Stream evaluation.
# Usage: scripts/run_all_experiments.sh [output-dir]
set -euo pipefail
out="${1:-experiment-results}"
mkdir -p "$out"

run() {
    local name="$1"
    echo "=== running $name ==="
    cargo run -p pp-bench --release --bin "$name" > "$out/$name.txt" 2>&1
    echo "    → $out/$name.txt"
}

cargo build -p pp-bench --release

run fig1             # Fig. 1
run exp1_accuracy    # Tables IV & V
run exp1_latency     # Fig. 6
run exp2_streaming   # Fig. 8
run exp3_loadbalance # Fig. 7
run exp4_partition   # Fig. 9
run exp5_leakage     # Table VI
run exp6_sota        # Table VII

echo "=== criterion ablations ==="
cargo bench --workspace > "$out/ablations.txt" 2>&1
echo "all results in $out/"
