//! Truly distributed PP-Stream: the model provider and the data provider
//! run as independent endpoints connected only by a real TCP socket
//! (localhost here; point the address at another host for a two-machine
//! deployment, as in the paper's testbed — see also the standalone
//! `model_provider` / `data_provider` binaries for a real two-process
//! run).
//!
//! ```sh
//! cargo run --release --example distributed_inference
//! ```
//!
//! The wire carries exactly the protocol of paper Fig. 3, preceded by a
//! versioned handshake (protocol version + public-key fingerprint +
//! model-topology digest); after it, every crossing is an encrypted
//! (and, mid-protocol, permutation-obfuscated) tensor. The demo asserts
//! the networked classifications equal the in-process pipeline's.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{ModelProvider, NetConfig, NetworkedSession, PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Both parties agree on the model architecture and scaling factor
    // out of band; the handshake's topology digest verifies they did.
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("distributed-mlp", &[6, 10, 3], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 10_000);

    // 64-bit slots in a 256-bit key leave three slots per ciphertext —
    // exactly this demo's batch, so all three requests ride one packed
    // linear pass each round (DESIGN.md §8).
    let config =
        NetConfig { key_bits: 256, seed: 99, pack_slot_bits: 64, ..NetConfig::default() };

    // ---- Model provider: a TCP server owning the weights. ----
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || {
        let report = provider.serve_listener(&listener).expect("serve");
        println!(
            "[model-provider] served {} requests, {} B in / {} B out, clean shutdown: {}",
            report.requests, report.bytes_in, report.bytes_out, report.clean_shutdown
        );
        report
    });

    // ---- Data provider: a TCP client owning the keys and the inputs. ----
    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    println!("[data-provider] handshake accepted by {addr}");

    let inputs: Vec<Tensor<f64>> = (0..3u64)
        .map(|seq| {
            Tensor::from_flat(
                (0..6).map(|j| ((seq * 6 + j) as f64 * 0.41).sin()).collect::<Vec<f64>>(),
            )
        })
        .collect();

    let (classes, report) = session.classify_stream(&inputs).expect("networked inference");
    let transport = report.transport.as_ref().expect("networked run has transport stats");
    println!(
        "[data-provider] {} requests in {:?} (mean latency {:?}); {} frames / {} B sent, \
         {} frames / {} B received",
        classes.len(),
        report.makespan,
        report.mean_latency,
        transport.frames_sent,
        transport.bytes_sent,
        transport.frames_received,
        transport.bytes_received,
    );
    println!(
        "[data-provider] packing: {} items in {} packed rounds, {} fallbacks",
        transport.packed_items, transport.packed_rounds, transport.packed_fallbacks,
    );
    assert_eq!(
        transport.packed_items,
        inputs.len() as u64,
        "with seeds fixed and the layout feasible, every request rides a packed batch"
    );
    let final_report = session.shutdown();
    assert!(final_report.clean_shutdown);
    println!(
        "[data-provider] resilience: {} reconnects, {} items replayed, {} faults injected",
        final_report.reconnects, final_report.items_replayed, final_report.faults_injected,
    );
    let server_report = server.join().expect("model provider thread");
    assert!(server_report.clean_shutdown, "server must observe a clean EOF");

    // The networked deployment must compute the same function as the
    // in-process pipeline.
    let mut local_cfg = PpStreamConfig::small_test(config.key_bits);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.classify_stream(&inputs).expect("in-process inference");
    assert_eq!(classes, want, "networked classifications must match in-process");

    println!("\nall {} networked classifications match the in-process pipeline —", classes.len());
    println!("the two-process deployment computes the same function while exchanging");
    println!("only ciphertext.");
}
