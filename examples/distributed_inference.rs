//! Truly distributed PP-Stream: the model provider and the data provider
//! run as independent endpoints connected only by a real TCP socket
//! (localhost here; point the address at another host for a two-machine
//! deployment, as in the paper's testbed).
//!
//! ```sh
//! cargo run --release --example distributed_inference
//! ```
//!
//! The wire carries exactly the protocol of paper Fig. 3: the handshake
//! shares the data provider's *public* key, then every crossing is an
//! encrypted (and, mid-protocol, permutation-obfuscated) tensor.

use pp_bigint::BigUint;
use pp_nn::{zoo, ScaledModel};
use pp_paillier::{Keypair, PublicKey};
use pp_stream::encapsulate::{encapsulate, StageRole};
use pp_stream::messages::EncTensorMsg;
use pp_stream::protocol::{EncryptStage, LinearStage, NonLinearStage, PartitionMode, PermStore};
use pp_stream_runtime::link::Frame;
use pp_stream_runtime::tcp;
use pp_stream_runtime::wire::{from_frame, to_frame};
use pp_stream_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    // Both parties agree on the model *architecture* out of band; only
    // the model provider holds the weights.
    let model = zoo::mlp("distributed-mlp", &[6, 10, 3], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 10_000);
    let stages = encapsulate(&scaled).expect("stages");
    let factor = scaled.factor();

    // ---- Model provider: a TCP server owning the weights. ----
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mp_stages = stages.clone();
    let model_provider = std::thread::spawn(move || {
        let (stream, peer) = listener.accept().expect("accept");
        println!("[model-provider] data provider connected from {peer}");
        let (mut tx, mut rx) = tcp::framed(stream).expect("framed");

        // Handshake: receive the data provider's public key (n).
        let hello = rx.recv().expect("recv").expect("handshake frame");
        let pk = PublicKey::from_n(BigUint::from_bytes_be(&hello.payload));
        println!("[model-provider] received {}-bit public key", pk.bits());

        // Build the linear-stage executors (the weights never leave here).
        let pool = WorkerPool::new(2);
        let perms = Arc::new(PermStore::default());
        let intra = Arc::new(AtomicU64::new(0));
        let linear: Vec<LinearStage> = {
            let n_linear =
                mp_stages.iter().filter(|s| s.role == StageRole::Linear).count();
            mp_stages
                .iter()
                .filter(|s| s.role == StageRole::Linear)
                .enumerate()
                .map(|(idx, stage)| LinearStage {
                    pk: pk.clone(),
                    stage: stage.clone(),
                    linear_idx: idx,
                    is_first: idx == 0,
                    is_last: idx == n_linear - 1,
                    perms: Arc::clone(&perms),
                    mode: PartitionMode::Partitioned,
                    seed: 77,
                    intra_bytes: Arc::clone(&intra),
                })
                .collect()
        };

        // Serve: each incoming frame for a request advances it one linear
        // round.
        let mut next_round: HashMap<u64, usize> = HashMap::new();
        let mut bytes_seen = 0u64;
        while let Some(frame) = rx.recv().expect("recv") {
            bytes_seen += frame.payload.len() as u64;
            let msg: EncTensorMsg = from_frame(frame.payload).expect("enc tensor");
            let round = next_round.entry(msg.seq).or_insert(0);
            let out = linear[*round].execute(msg, &pool).expect("linear round");
            *round += 1;
            let payload = to_frame(&out);
            bytes_seen += payload.len() as u64;
            tx.send(&Frame { seq: out.seq, payload }).expect("send");
        }
        println!("[model-provider] connection closed; {bytes_seen} B exchanged");
    });

    // ---- Data provider: a TCP client owning the keys and the inputs. ----
    let keypair = {
        let mut rng = StdRng::seed_from_u64(99);
        Keypair::generate(256, &mut rng)
    };
    let (mut tx, mut rx) = tcp::connect(addr).expect("connect");
    tx.send(&Frame { seq: 0, payload: keypair.public().n().to_bytes_be().into() })
        .expect("handshake");

    let pool = WorkerPool::new(2);
    let encrypt = EncryptStage { pk: keypair.public(), seed: 5 };
    let nonlinear: Vec<NonLinearStage> = stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.role == StageRole::NonLinear)
        .map(|(i, stage)| NonLinearStage {
            keypair: keypair.clone(),
            stage: stage.clone(),
            factor,
            is_last: i == stages.len() - 1,
            seed: 6,
        })
        .collect();

    for seq in 0..3u64 {
        let input = pp_tensor::Tensor::from_flat(
            (0..6).map(|j| ((seq * 6 + j) as f64 * 0.41).sin()).collect::<Vec<f64>>(),
        );
        let t0 = Instant::now();
        let scaled_in = scaled.scale_input(&input);
        let mut msg = encrypt.encrypt(
            pp_stream::messages::PlainTensorMsg {
                seq,
                shape: vec![6],
                values: scaled_in.data().iter().map(|&v| v as i128).collect(),
            },
            &pool,
        );
        let mut result = None;
        for nl in &nonlinear {
            // Send to the model provider (linear round) …
            tx.send(&Frame { seq, payload: to_frame(&msg) }).expect("send");
            let reply = rx.recv().expect("recv").expect("reply");
            let enc: EncTensorMsg = from_frame(reply.payload).expect("enc tensor");
            // … then run our non-linear round on the (permuted) values.
            if nl.is_last {
                result = Some(nl.execute_final(enc, &pool));
            } else {
                msg = nl.execute(enc, &pool);
            }
        }
        let result = result.expect("final round");
        let out: Vec<i64> =
            result.values.iter().map(|&v| i64::try_from(v).expect("fits")).collect();
        let class = pp_nn::activation::argmax_i64(&pp_tensor::Tensor::from_flat(out));
        let want = scaled.classify_scaled(&input).expect("reference");
        println!(
            "[data-provider] request {seq}: class {class} (reference {want}) in {:?}",
            t0.elapsed()
        );
        assert_eq!(class, want, "distributed result must match the local reference");
    }

    drop(tx);
    drop(rx);
    model_provider.join().expect("model provider thread");
    println!("\nall requests matched the local scaled reference — the distributed");
    println!("deployment computes the same function while exchanging only ciphertext.");
}
