//! PP-Stream vs an EzPC-style ABY baseline on the same model — the
//! Exp#6 / Table VII comparison at example scale.
//!
//! ```sh
//! cargo run --release --example ezpc_comparison
//! ```
//!
//! Both systems perform privacy-preserving inference, but with different
//! protocol structures:
//!
//! * **PP-Stream** — Paillier-encrypted linear stages + permutation-
//!   obfuscated non-linear stages, pipelined across servers;
//! * **EzPC (mini-ABY)** — additive secret sharing for linear layers and
//!   a garbled circuit per ReLU element, with A2Y/Y2A conversions at
//!   every linear↔non-linear boundary (the switching overhead the paper
//!   identifies as EzPC's bottleneck).

use pp_mpc::nn::SecureInference;
use pp_nn::{zoo, ScaledModel};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let model = zoo::mlp("compare-mlp", &[16, 24, 10], &mut rng).expect("model");
    let input = Tensor::from_flat((0..16).map(|i| (i as f64 * 0.21).cos() * 0.8).collect::<Vec<_>>());
    let plain_class = model.classify(&input).expect("plain");

    // PP-Stream.
    let scaled = ScaledModel::from_model(&model, 10_000);
    let config = PpStreamConfig { key_bits: 256, ..Default::default() };
    let session = PpStream::new(scaled, config).expect("session");
    let (classes, report) = session.classify_stream(std::slice::from_ref(&input)).expect("pp-stream");
    println!("PP-Stream : class {} | latency {:?} | {} B inter-stage traffic", classes[0], report.mean_latency, report.link_bytes.iter().sum::<u64>());

    // EzPC-style mini-ABY.
    let t0 = Instant::now();
    let mut mpc = SecureInference::new(model.clone(), 99);
    let (secure_out, cost) = mpc.infer(&input).expect("mpc");
    let mpc_latency = t0.elapsed();
    let mpc_class = pp_nn::activation::argmax(&secure_out);
    println!(
        "mini-ABY  : class {mpc_class} | latency {mpc_latency:?} | {} B | {} Beaver triples | {} garbled circuits ({} AND gates)",
        cost.bytes, cost.triples, cost.gc_executions, cost.and_gates
    );

    assert_eq!(classes[0], plain_class);
    assert_eq!(mpc_class, plain_class);
    println!("\nboth match the plaintext class {plain_class}; the ABY baseline pays one");
    println!("garbled-circuit execution per ReLU element — the protocol-switching");
    println!("cost the paper measures in Table VII.");
}
