//! Information-leakage audit of the obfuscation mechanism (paper Exp#5).
//!
//! ```sh
//! cargo run --release --example leakage_audit
//! ```
//!
//! The permutation obfuscation reorders tensor elements but keeps their
//! values, so a curious data provider sees the multiset of activations.
//! This audit quantifies what that leaks, exactly as the paper does:
//! distance correlation (Székely et al.) between tensors before and
//! after obfuscation, across tensor lengths 2⁵..2¹³.

use pp_obfuscate::{distance_correlation, Permutation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    println!("tensor length   distance correlation   permutations (P!)");
    for exp in 5..=13u32 {
        let n = 1usize << exp;
        // Activation-like values (post-ReLU mix of zeros and positives).
        let tensor: Vec<f64> = (0..n)
            .map(|_| {
                let v: f64 = rng.gen_range(-1.0..1.0);
                v.max(0.0)
            })
            .collect();
        let perm = Permutation::random(n, &mut rng);
        let obfuscated = perm.apply(&tensor).expect("lengths match");
        let dcor = distance_correlation(&tensor, &obfuscated);
        // log10(P!) via Stirling, to show the search space the adversary
        // faces (paper Sec. III-D: success probability 1/P!).
        let nf = n as f64;
        let log10_fact = nf * nf.log10() - nf / std::f64::consts::LN_10
            + 0.5 * (2.0 * std::f64::consts::PI * nf).log10();
        println!("  2^{exp:<2} = {n:<6} {dcor:>10.4}            10^{log10_fact:.0}");
    }
    println!("\nlower dcor = less leakage; the paper's Table VI reports the same trend");
    println!("(0.29 at 2^5 falling to 0.02 at 2^13).");
}
