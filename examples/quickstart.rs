//! Quickstart: privacy-preserving inference on a small model in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small MLP, scales it to integers, deploys a PP-Stream session
//! (Paillier-encrypted linear stages at the model provider, obfuscated
//! non-linear stages at the data provider), and streams a handful of
//! inference requests through the pipeline.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // 1. The model provider has a trained network (here: random weights).
    let model = zoo::mlp("quickstart-mlp", &[8, 16, 4], &mut rng).expect("valid model");

    // 2. Scale float parameters to integers for Paillier arithmetic
    //    (paper Sec. IV-A). 10⁴ preserves ~4 decimal digits.
    let scaled = ScaledModel::from_model(&model, 10_000);

    // 3. Deploy the PP-Stream session: keygen, operation encapsulation,
    //    offline profiling, ILP-based load balancing.
    // demo-sized key; the paper uses 2048
    let config = PpStreamConfig { key_bits: 256, ..Default::default() };
    let session = PpStream::new(scaled, config).expect("session");

    println!("pipeline stages:");
    for (name, threads) in session
        .stages()
        .iter()
        .map(|s| format!("{:?}", s.role))
        .zip(session.plan().threads().iter().skip(1))
    {
        println!("  {name:<10} × {threads} threads");
    }

    // 4. The data provider streams encrypted inference requests.
    let inputs: Vec<Tensor<f64>> = (0..6)
        .map(|i| {
            Tensor::from_flat(
                (0..8)
                    .map(|j| ((i * 8 + j) as f64 * 0.37).sin())
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let (classes, report) = session.classify_stream(&inputs).expect("inference");

    // 5. Results match plaintext inference exactly (correctness, Sec. II-C).
    println!("\nrequest  private  plaintext");
    for (i, (input, &private)) in inputs.iter().zip(&classes).enumerate() {
        let plain = model.classify(input).expect("plain inference");
        println!("  #{i}      {private}        {plain}");
        assert_eq!(private, plain);
    }
    println!(
        "\nmean latency {:?}, makespan {:?}, {} B over links",
        report.mean_latency,
        report.makespan,
        report.link_bytes.iter().sum::<u64>()
    );
    println!("\nper-stage metrics (from the instrumented runtime):");
    for s in &report.stages {
        println!(
            "  {:<16} compute {:>10?}  queue-wait {:>10?}  {} B serialized",
            s.name, s.compute, s.queue_wait, s.bytes_serialized
        );
    }
}
