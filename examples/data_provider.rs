//! Standalone data-provider client for a real two-process deployment.
//!
//! Start `model_provider` first (same address), then:
//!
//! ```sh
//! cargo run --release --example data_provider -- 127.0.0.1:7700
//! ```
//!
//! The client owns the Paillier keypair and the inputs; it encrypts
//! locally, round-trips every linear stage through the server, runs the
//! non-linear stages on permutation-obfuscated plaintext, and checks the
//! final classes against the local scaled reference. Connection attempts
//! retry with exponential backoff, so starting the client slightly
//! before the server is fine.
//!
//! Mid-stream socket loss is absorbed transparently: the client
//! reconnects, resumes its session, and replays only unacknowledged
//! items. To watch that happen, inject deterministic faults via the
//! `PP_FAULT_*` environment variables (needs the default
//! `fault-injection` feature), e.g.:
//!
//! ```sh
//! PP_FAULT_KILL_EVERY=7 PP_FAULT_SEED=1 \
//!   cargo run --release --example data_provider -- 127.0.0.1:7700
//! ```
//!
//! Overload knobs: `PP_ITEM_DEADLINE_MS=n` stamps an `n`-millisecond
//! end-to-end budget on every item (an expired item is shed with a
//! per-item error, not a session failure); `PP_WATCHDOG_MS=n` arms the
//! stall watchdog, recovering a linear-round reply slower than `n`
//! milliseconds by reconnect-and-resume instead of waiting out the full
//! TCP read timeout.
//!
//! Failover: `PP_PROVIDER_ADDRS=host1:port,host2:port` hands the client
//! an *ordered* provider list instead of the single positional address.
//! A connect or resume that fails against the current provider sweeps
//! to the next (same session, same exactly-once floors when the
//! providers share a session journal); the final report counts the
//! address changes as `failovers`.
//!
//! Packing knobs: `PP_PACK_BITS=s` proposes batch-packed ciphertexts
//! with `s`-bit slots in the handshake (DESIGN.md §8) — with this demo's
//! 256-bit key, `PP_PACK_BITS=64` fits all three requests into one
//! packed batch; `PP_PACK_BATCH=n` caps members per batch below the slot
//! count. If the server declines (or the layout can't hold the model's
//! op budget) the stream transparently stays on the per-item protocol.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{NetConfig, NetworkedSession};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The architecture both demo binaries agree on.
fn demo_model() -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("distributed-mlp", &[6, 10, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn demo_config() -> NetConfig {
    let env_ms = |key: &str| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(std::time::Duration::from_millis)
    };
    let env_n = |key: &str| {
        std::env::var(key).ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(0)
    };
    let mut config = NetConfig { key_bits: 256, seed: 99, ..NetConfig::default() };
    config.item_deadline = env_ms("PP_ITEM_DEADLINE_MS");
    config.stall_window = env_ms("PP_WATCHDOG_MS");
    config.pack_slot_bits = env_n("PP_PACK_BITS");
    config.pack_batch = env_n("PP_PACK_BATCH");
    if let Some(budget) = config.item_deadline {
        println!("[data-provider] end-to-end deadline: {budget:?} per item");
    }
    if let Some(window) = config.stall_window {
        println!("[data-provider] stall watchdog armed: {window:?}");
    }
    if config.pack_slot_bits > 0 {
        println!(
            "[data-provider] proposing batch-packed ciphertexts: {}-bit slots, batch cap {}",
            config.pack_slot_bits,
            if config.pack_batch == 0 { "fill".to_string() } else { config.pack_batch.to_string() }
        );
    }
    #[cfg(feature = "fault-injection")]
    {
        config.fault = pp_stream::FaultPlan::from_env();
        if let Some(plan) = &config.fault {
            println!("[data-provider] fault injection armed: {plan:?}");
        }
    }
    config
}

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7700".to_string());
    // An explicit provider list wins over the positional address; order
    // is failover priority.
    let providers: Vec<String> = match std::env::var("PP_PROVIDER_ADDRS") {
        Ok(list) if !list.trim().is_empty() => {
            list.split(',').map(|a| a.trim().to_string()).filter(|a| !a.is_empty()).collect()
        }
        _ => vec![addr],
    };
    let scaled = demo_model();
    let config = demo_config();

    if providers.len() > 1 {
        println!("[data-provider] provider failover order: {}", providers.join(" -> "));
    }
    let mut session = NetworkedSession::connect_any(&providers, scaled.clone(), &config)
        .expect("connect + handshake");
    println!(
        "[data-provider] handshake accepted by {} (session {}, connect attempts: {})",
        providers.join(","),
        session.session(),
        session.transport().connect_attempts
    );

    let inputs: Vec<Tensor<f64>> = (0..3u64)
        .map(|seq| {
            Tensor::from_flat(
                (0..6).map(|j| ((seq * 6 + j) as f64 * 0.41).sin()).collect::<Vec<f64>>(),
            )
        })
        .collect();

    // The partial API: a per-item overload failure (deadline expiry,
    // quarantine, shed) is a `None` class, not a dead session.
    let (classes, report) = session.classify_stream_partial(&inputs).expect("networked inference");
    for (i, (input, class)) in inputs.iter().zip(&classes).enumerate() {
        let want = scaled.classify_scaled(input).expect("reference");
        match class {
            Some(class) => {
                println!("[data-provider] request {i}: class {class} (local reference {want})");
                assert_eq!(*class, want, "networked result must match the local reference");
            }
            None => println!("[data-provider] request {i}: failed individually (overload)"),
        }
    }
    let transport = report.transport.expect("networked run has transport stats");
    println!(
        "[data-provider] done in {:?}; {} frames / {} B sent, {} frames / {} B received",
        report.makespan,
        transport.frames_sent,
        transport.bytes_sent,
        transport.frames_received,
        transport.bytes_received,
    );
    let final_report = session.shutdown();
    println!(
        "[data-provider] resilience: {} reconnects, {} failovers, {} items replayed, \
         {} faults injected, clean shutdown: {}",
        final_report.reconnects,
        final_report.failovers,
        final_report.items_replayed,
        final_report.faults_injected,
        final_report.clean_shutdown,
    );
    if final_report.packed_items + final_report.packed_fallbacks > 0 {
        println!(
            "[data-provider] packing: {} items in {} packed rounds, {} fallbacks",
            final_report.packed_items, final_report.packed_rounds, final_report.packed_fallbacks,
        );
    }
    if final_report.rejected_busy
        + final_report.stalls
        + final_report.deadline_expired
        + final_report.quarantined
        + final_report.shed
        > 0
    {
        println!(
            "[data-provider] overload: {} busy rejections absorbed, {} stalls recovered, \
             {} deadline-expired, {} quarantined, {} shed",
            final_report.rejected_busy,
            final_report.stalls,
            final_report.deadline_expired,
            final_report.quarantined,
            final_report.shed,
        );
    }
}
