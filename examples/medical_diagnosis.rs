//! Medical diagnosis — the paper's motivating healthcare scenario.
//!
//! ```sh
//! cargo run --release --example medical_diagnosis
//! ```
//!
//! A hospital (data provider) wants tumor-malignancy predictions from a
//! diagnostics company's proprietary model (model provider) without
//! revealing patient features; the company won't reveal its weights.
//!
//! End-to-end flow: train a 3FC model on the Breast dataset stand-in,
//! pick the scaling factor with the paper's Sec. IV-A search, deploy
//! PP-Stream, and stream test patients through the private pipeline.

use pp_nn::{choose_scaling_factor, zoo, ScaledModel, TrainConfig, Trainer};
use pp_stream::{PpStream, PpStreamConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = pp_datasets::breast(11);

    // Model provider: train the 3FC diagnosis model.
    let mut model = zoo::healthcare_3fc("Breast-3FC", 30, &mut rng).expect("model");
    let mut trainer = Trainer::new(TrainConfig {
        learning_rate: 0.1,
        epochs: 25,
        batch_size: 16,
        momentum: 0.9,
    });
    trainer.train(&mut model, &data.train, &mut rng).expect("training");
    let train_acc = model.accuracy(&data.train).expect("accuracy");
    let test_acc = model.accuracy(&data.test).expect("accuracy");
    println!("trained 3FC: train accuracy {:.2}%, test accuracy {:.2}%", train_acc * 100.0, test_acc * 100.0);

    // Parameter scaling (Sec. IV-A): smallest F = 10^f that keeps
    // training accuracy within 0.01%.
    let report = choose_scaling_factor(&model, &data.train, 1e-4, 6).expect("scaling search");
    println!(
        "scaling factor search: accuracies per f = {:?} → chose F = 10^{}",
        report
            .accuracies
            .iter()
            .map(|a| format!("{:.1}%", a * 100.0))
            .collect::<Vec<_>>(),
        report.f
    );
    let scaled = ScaledModel::from_model(&model, report.factor.max(10));

    // Deploy and stream 20 test patients.
    let config = PpStreamConfig { key_bits: 256, ..Default::default() };
    let session = PpStream::new(scaled, config).expect("session");
    let patients: Vec<_> = data.test.iter().take(20).collect();
    let inputs: Vec<_> = patients.iter().map(|(x, _)| x.clone()).collect();
    let (classes, run) = session.classify_stream(&inputs).expect("private inference");

    let mut correct = 0;
    let mut agree = 0;
    for ((input, label), &private) in patients.iter().zip(&classes) {
        let plain = model.classify(input).expect("plain");
        correct += usize::from(private == *label);
        agree += usize::from(private == plain);
    }
    println!(
        "private inference on {} patients: {}/{} correct, {}/{} agree with plaintext",
        patients.len(),
        correct,
        patients.len(),
        agree,
        patients.len()
    );
    println!(
        "mean private latency {:?} (pipeline makespan {:?})",
        run.mean_latency, run.makespan
    );
    assert_eq!(agree, patients.len(), "correctness guarantee violated");
}
