//! Image classification with a convolutional model, demonstrating tensor
//! partitioning (paper Sec. IV-D).
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```
//!
//! Runs a 1Conv+2FC MNIST-style model through PP-Stream twice — with and
//! without tensor partitioning — and reports the per-thread communication
//! and latency difference (the Exp#4 effect at demo scale).

use pp_nn::{zoo, ScaledModel};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    // Demo-scale conv model (14×14 inputs keep the example under a
    // minute; the benches run the full 28×28 MNIST-2 model).
    let model = {
        let conv = zoo::conv_layer(&mut rng, 1, 4, 3, 2, 1); // → [4,7,7]
        let layers = vec![
            conv,
            pp_nn::Layer::ReLU,
            pp_nn::Layer::Flatten,
            zoo::dense_layer(&mut rng, 4 * 7 * 7, 32),
            pp_nn::Layer::ReLU,
            zoo::dense_layer(&mut rng, 32, 10),
            pp_nn::Layer::SoftMax,
        ];
        pp_nn::Model::new("mini-conv", vec![1, 14, 14], layers).expect("model")
    };
    let scaled = ScaledModel::from_model(&model, 1_000);

    let data = pp_datasets::mnist_small(3);
    let inputs: Vec<Tensor<f64>> = data
        .test
        .iter()
        .take(4)
        .map(|(x, _)| {
            // Down-sample the 28×28 stand-in images to 14×14.
            let mut v = Vec::with_capacity(14 * 14);
            for y in 0..14 {
                for xx in 0..14 {
                    v.push(*x.get(&[0, y * 2, xx * 2]).expect("in range"));
                }
            }
            Tensor::from_vec(vec![1, 14, 14], v).expect("sized")
        })
        .collect();

    for partition in [true, false] {
        let config = PpStreamConfig {
            key_bits: 192,
            tensor_partition: partition,
            ..Default::default()
        };
        let session = PpStream::new(scaled.clone(), config).expect("session");
        let (classes, report) = session.classify_stream(&inputs).expect("inference");
        for (input, &c) in inputs.iter().zip(&classes) {
            // Correctness guarantee (Sec. II-C): the encrypted pipeline
            // reproduces the scaled-integer inference exactly.
            assert_eq!(c, scaled.classify_scaled(input).expect("reference"), "correctness");
        }
        println!(
            "tensor partitioning {:<5}: mean latency {:>10?}, thread-input traffic {:>12} B",
            partition,
            report.mean_latency,
            report.intra_stage_bytes
        );
    }
    println!("\n(partitioning ships each thread only its receptive-field sub-tensor — Fig. 5b)");
}
