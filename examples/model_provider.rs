//! Standalone model-provider server for a real two-process deployment.
//!
//! Run this first, then `data_provider` (optionally on another machine):
//!
//! ```sh
//! cargo run --release --example model_provider -- 127.0.0.1:7700
//! cargo run --release --example data_provider  -- 127.0.0.1:7700
//! ```
//!
//! The server owns the scaled weights and executes the linear stages
//! homomorphically; it never sees the client's private key or any
//! plaintext activation. By default it runs the supervised multi-client
//! server: a bounded worker pool where a misbehaving client (garbage
//! handshake, mid-stream disconnect, even a worker panic) is isolated to
//! its own connection while everyone else keeps streaming. Pass `--once`
//! to serve a single connection sequentially and exit (useful in
//! scripts).
//!
//! Clients that lose their socket mid-stream reconnect and resume their
//! session; the server keeps a bounded, TTL-evicted session table so
//! acknowledged items are never re-executed.
//!
//! Overload protection: set `PP_MAX_SESSIONS=n` to cap concurrent
//! sessions — a connection over the cap is answered with
//! `Reject { code: Busy }` and a retry hint instead of queueing, and
//! clients back off and retry. Per-item counters (deadline expiries,
//! quarantined poison items, load sheds) appear in the final report.
//!
//! Serving at scale: `PP_MAX_WORKERS=n` sets the event-loop shard count
//! (connections are distributed round-robin across shards),
//! `PP_GATHER_WINDOW_US=µs` enables cross-session batching (linear
//! rounds from different sessions arriving within the window run as one
//! fused dispatch), and `PP_EVLOOP=0` forces the legacy
//! thread-per-connection supervisor.
//!
//! Crash durability: set `PP_JOURNAL_DIR=/path` to journal every
//! session-table transition to `/path/sessions.journal` — a restarted
//! process pointed at the same directory restores the table and accepts
//! `Resume` for sessions the dead process had promised (DESIGN.md
//! "Crash recovery model"). `PP_JOURNAL_FSYNC=always` adds an fdatasync
//! per record for power-loss durability; the default survives process
//! death only.
//!
//! Both binaries build the same demo model from a fixed seed so their
//! topology digests agree — in a real deployment the architecture (not
//! the weights) is what the two parties must share out of band.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{JournalConfig, ModelProvider, NetConfig, ServeOptions, ServeReport};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The architecture both demo binaries agree on.
fn demo_model() -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("distributed-mlp", &[6, 10, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn demo_config() -> NetConfig {
    NetConfig { key_bits: 256, seed: 99, ..NetConfig::default() }
}

fn print_report(report: &ServeReport) {
    println!(
        "[model-provider] {} connections ({} resumed, {} rejected, {} busy-rejected, \
         {} failed, {} panicked): {} requests ({} replayed), {} B in / {} B out, \
         clean shutdown: {}",
        report.connections,
        report.resumed_sessions,
        report.rejected_handshakes,
        report.rejected_busy,
        report.failed_connections,
        report.panicked_connections,
        report.requests,
        report.replayed_items,
        report.bytes_in,
        report.bytes_out,
        report.clean_shutdown
    );
    if report.deadline_expired + report.quarantined + report.shed > 0 {
        println!(
            "[model-provider] overload: {} deadline-expired, {} quarantined, {} shed",
            report.deadline_expired, report.quarantined, report.shed
        );
    }
    if let Some(err) = &report.last_error {
        println!("[model-provider] last connection error: {err}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7700".to_string());

    let scaled = demo_model();
    let provider = ModelProvider::new(&scaled, &demo_config()).expect("provider");
    let journal = JournalConfig::from_env();
    if let Some(cfg) = &journal {
        let restored = provider.open_journal(cfg).expect("open session journal");
        println!(
            "[model-provider] session journal at {} ({:?} fsync): {restored} session(s) restored",
            cfg.path().display(),
            cfg.fsync
        );
    }
    let listener = std::net::TcpListener::bind(&addr).expect("bind");
    let local = listener.local_addr().expect("addr");
    println!(
        "[model-provider] listening on {local} (topology digest {:#018x})",
        provider.topology()
    );

    if once {
        // Sequential single-connection mode for scripted runs.
        match provider.serve_listener(&listener) {
            Ok(report) => print_report(&report),
            Err(e) => eprintln!("[model-provider] connection failed: {e}"),
        }
        return;
    }

    // Supervised multi-client mode: a bounded worker pool where each
    // connection is isolated, running until the process is killed.
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        max_sessions: std::env::var("PP_MAX_SESSIONS").ok().and_then(|v| v.parse().ok()),
        max_workers: std::env::var("PP_MAX_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.max_workers),
        gather_window: std::env::var("PP_GATHER_WINDOW_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .map_or(defaults.gather_window, std::time::Duration::from_micros),
        journal,
        ..defaults
    };
    if let Some(cap) = options.max_sessions {
        println!("[model-provider] admission control: at most {cap} concurrent sessions");
    }
    println!(
        "[model-provider] serving shape: {} workers, gather window {:?}, event loop {}",
        options.max_workers,
        options.gather_window,
        if pp_stream::evloop::supported()
            && !options.legacy_threaded
            && std::env::var("PP_EVLOOP").as_deref() != Ok("0")
        {
            "on"
        } else {
            "off (legacy threaded)"
        }
    );
    let provider = std::sync::Arc::new(provider);
    let _handle = provider.serve_forever(listener, options).expect("spawn server");
    println!("[model-provider] supervised server up (Ctrl+C to stop)");
    loop {
        std::thread::park();
    }
}
