//! Standalone model-provider server for a real two-process deployment.
//!
//! Run this first, then `data_provider` (optionally on another machine):
//!
//! ```sh
//! cargo run --release --example model_provider -- 127.0.0.1:7700
//! cargo run --release --example data_provider  -- 127.0.0.1:7700
//! ```
//!
//! The server owns the scaled weights and executes the linear stages
//! homomorphically; it never sees the client's private key or any
//! plaintext activation. Pass `--once` to exit after serving one client
//! (useful in scripts); otherwise it serves clients sequentially until
//! killed.
//!
//! Both binaries build the same demo model from a fixed seed so their
//! topology digests agree — in a real deployment the architecture (not
//! the weights) is what the two parties must share out of band.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{ModelProvider, NetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The architecture both demo binaries agree on.
fn demo_model() -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("distributed-mlp", &[6, 10, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn demo_config() -> NetConfig {
    NetConfig { key_bits: 256, seed: 99, ..NetConfig::default() }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7700".to_string());

    let scaled = demo_model();
    let provider = ModelProvider::new(&scaled, &demo_config()).expect("provider");
    let listener = std::net::TcpListener::bind(&addr).expect("bind");
    let local = listener.local_addr().expect("addr");
    println!(
        "[model-provider] listening on {local} (topology digest {:#018x})",
        provider.topology()
    );

    loop {
        match provider.serve_listener(&listener) {
            Ok(report) => println!(
                "[model-provider] connection done: {} requests, {} B in / {} B out, \
                 clean shutdown: {}",
                report.requests, report.bytes_in, report.bytes_out, report.clean_shutdown
            ),
            // A failed client (handshake rejection, mid-stream drop) must
            // not take the server down; log and keep serving.
            Err(e) => eprintln!("[model-provider] connection failed: {e}"),
        }
        if once {
            break;
        }
    }
}
