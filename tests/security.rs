//! Security-property integration tests for the guarantees of paper
//! Sec. II-C: what each party (and an eavesdropper) can observe.

use pp_nn::{zoo, ScaledModel};
use pp_obfuscate::distance_correlation;
use pp_paillier::Keypair;
use pp_stream::encapsulate::{encapsulate, StageRole};
use pp_stream::messages::{EncTensorMsg, PlainTensorMsg};
use pp_stream::protocol::{EncryptStage, LinearStage, NonLinearStage, PartitionMode, PermStore};
use pp_stream_runtime::WorkerPool;
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

struct Protocol {
    kp: Keypair,
    scaled: ScaledModel,
    stages: Vec<pp_stream::MergedStage>,
    perms: Arc<PermStore>,
    pool: WorkerPool,
}

impl Protocol {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::mlp("m", &[6, 8, 3], &mut rng).expect("model");
        let scaled = ScaledModel::from_model(&model, 1_000);
        let stages = encapsulate(&scaled).expect("stages");
        Protocol {
            kp: Keypair::generate(128, &mut rng),
            scaled,
            stages,
            perms: Arc::new(PermStore::default()),
            pool: WorkerPool::new(2),
        }
    }

    /// Runs the protocol, returning every message that crossed the
    /// provider boundary (model↔data), in order.
    fn run_collecting(&self, input: &Tensor<f64>, seq: u64) -> Vec<EncTensorMsg> {
        let mut crossings = Vec::new();
        let enc = EncryptStage { pk: self.kp.public(), seed: 1 ^ seq, rand_pool: None };
        let scaled_in = self.scaled.scale_input(input);
        let mut msg = enc.encrypt(
            PlainTensorMsg {
                seq,
                shape: vec![input.len() as u64],
                values: scaled_in.data().iter().map(|&v| v as i128).collect(),
            },
            &self.pool,
        );
        crossings.push(msg.clone()); // data → model

        let n_linear = self.stages.iter().filter(|s| s.role == StageRole::Linear).count();
        let mut linear_idx = 0;
        for (i, stage) in self.stages.iter().enumerate() {
            match stage.role {
                StageRole::Linear => {
                    let exec = LinearStage {
                        pk: self.kp.public(),
                        stage: stage.clone(),
                        linear_idx,
                        is_first: linear_idx == 0,
                        is_last: linear_idx == n_linear - 1,
                        perms: Arc::clone(&self.perms),
                        mode: PartitionMode::Partitioned,
                        seed: 2,
                        intra_bytes: Arc::new(AtomicU64::new(0)),
                    };
                    msg = exec.execute(msg, &self.pool).expect("linear round");
                    crossings.push(msg.clone()); // model → data
                    linear_idx += 1;
                }
                StageRole::NonLinear => {
                    let exec = NonLinearStage {
                        keypair: self.kp.clone(),
                        stage: stage.clone(),
                        factor: self.scaled.factor(),
                        is_last: i == self.stages.len() - 1,
                        seed: 3,
                    };
                    if !exec.is_last {
                        msg = exec.execute(msg, &self.pool).expect("nonlinear round");
                        crossings.push(msg.clone()); // data → model
                    }
                }
            }
        }
        crossings
    }
}

#[test]
fn everything_crossing_providers_is_encrypted() {
    // Eavesdropper guarantee: all inter-provider traffic is ciphertext.
    let p = Protocol::new(1);
    let input = Tensor::from_flat(vec![0.5, -0.25, 0.1, 0.9, -0.7, 0.3]);
    let crossings = p.run_collecting(&input, 0);
    assert!(crossings.len() >= 3);
    let pk = p.kp.public();
    for (i, msg) in crossings.iter().enumerate() {
        for ct_bytes in &msg.cts {
            let ct = pp_paillier::Ciphertext::from_bytes(ct_bytes);
            assert!(pk.validate(&ct), "crossing {i} carries an invalid ciphertext");
            // A plaintext leak would be a small integer; real ciphertexts
            // are indistinguishable from random elements of Z_{n²}.
            assert!(
                ct.raw().bit_len() > 64,
                "crossing {i} carries a suspiciously small value"
            );
        }
    }
}

#[test]
fn model_provider_cannot_decrypt_what_it_sees() {
    // The model provider holds only the public key; semantic security of
    // Paillier (Sec. III-D) covers the values. We check the system-level
    // consequence: two encryptions of the same input are unlinkable.
    let p = Protocol::new(2);
    let input = Tensor::from_flat(vec![0.5, -0.25, 0.1, 0.9, -0.7, 0.3]);
    let a = p.run_collecting(&input, 0);
    let b = p.run_collecting(&input, 1);
    // Same plaintext request, different randomness: every ciphertext
    // differs.
    for (ma, mb) in a.iter().zip(&b) {
        for (ca, cb) in ma.cts.iter().zip(&mb.cts) {
            assert_ne!(ca, cb, "ciphertexts must be probabilistic");
        }
    }
}

#[test]
fn intermediate_crossings_to_data_provider_are_obfuscated() {
    let p = Protocol::new(3);
    let input = Tensor::from_flat(vec![0.2, 0.4, -0.6, 0.8, -1.0, 0.1]);
    let crossings = p.run_collecting(&input, 0);
    // crossings: [enc input (D→M), linear0 out (M→D, obf), re-enc (D→M,
    // still obf), linear1 out (M→D, last round: clear positions)].
    assert!(!crossings[0].obfuscated, "input tensor is not obfuscated");
    assert!(crossings[1].obfuscated, "intermediate round must be obfuscated (Step 1.4)");
    let last = crossings.last().unwrap();
    assert!(!last.obfuscated, "final round skips obfuscation (Step 3.4)");
}

#[test]
fn data_provider_view_is_weakly_correlated_with_true_activations() {
    // What the curious data provider actually sees mid-protocol: the
    // decrypted but permuted activation vector. Its positional
    // correlation with the true (unpermuted) activations must be weak —
    // the Exp#5 argument, at integration level.
    let mut rng = StdRng::seed_from_u64(4);
    let model = zoo::mlp("m", &[32, 256, 4], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 1_000);

    let input = Tensor::from_flat((0..32).map(|i| ((i as f64) * 0.3).sin()).collect::<Vec<_>>());
    let x = scaled.scale_input(&input);

    // True first-layer pre-activations (what obfuscation protects).
    let ops = scaled.ops();
    let (weights, bias) = match &ops[0] {
        pp_nn::scaling::ScaledOp::Dense { weights, bias } => (weights, bias),
        _ => panic!("expected dense"),
    };
    let truth: Vec<f64> = (0..weights.shape().dims()[0])
        .map(|j| {
            let mut acc = bias[j] as i128;
            for (i, &xi) in x.data().iter().enumerate() {
                acc += *weights.get(&[j, i]).unwrap() as i128 * xi as i128;
            }
            acc as f64
        })
        .collect();

    // The data provider's view: a fresh random permutation of it.
    let perm = pp_obfuscate::Permutation::random(truth.len(), &mut rng);
    let view = perm.apply(&truth).unwrap();
    let d = distance_correlation(&truth, &view);
    assert!(d < 0.25, "positional leakage too high: dcor={d}");
}

#[test]
fn permutations_vary_per_round_and_request() {
    // Fresh seeds per round (Sec. III-C): the permutation drawn by the
    // same stage for different requests must differ, so positions cannot
    // be linked across rounds.
    let p = Protocol::new(5);
    let input = Tensor::from_flat(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
    let a = p.run_collecting(&input, 10);
    let b = p.run_collecting(&input, 11);
    // Same request content, different seq: the obfuscated crossings carry
    // different element orders. Decrypt both and compare orders.
    let sk = p.kp.private();
    let dec = |m: &EncTensorMsg| -> Vec<i64> {
        m.cts
            .iter()
            .map(|c| sk.decrypt_i64(&pp_paillier::Ciphertext::from_bytes(c)))
            .collect()
    };
    let va = dec(&a[1]);
    let vb = dec(&b[1]);
    let mut sa = va.clone();
    let mut sb = vb.clone();
    sa.sort_unstable();
    sb.sort_unstable();
    assert_eq!(sa, sb, "same multiset of activations");
    assert_ne!(va, vb, "different permutation per request");
}
