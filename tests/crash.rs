//! Crash-recovery tests: survive server death (requires the
//! `fault-injection` feature).
//!
//! The headline scenario: a *real* model-provider child process serves
//! a stream, gets SIGKILLed mid-item under a seeded schedule, and a
//! replacement process is started on a **different port** from the same
//! session journal. The client — holding an ordered provider list —
//! fails over, resumes its pre-crash session against the restarted
//! table, and finishes the stream with outputs **bit-identical** to the
//! in-process pipeline. Client and server must agree exactly on how
//! many items were replayed.
//!
//! Choreography (deterministic by construction, not by sleeps):
//!
//! 1. The client's fault plan stalls exactly one receive
//!    ([`FaultPlan::stall_at`]), parking it mid-item with round 0 of
//!    item `k` already sent.
//! 2. The parent polls the journal until the `Started { started: k+1 }`
//!    floor proves the server both executed that round 0 and made it
//!    durable — then SIGKILLs the server. The frozen client cannot
//!    outrun the kill, so the crash always lands at the same point in
//!    the stream.
//! 3. A fresh child on the second port restores the session from the
//!    journal; the waking client finds a dead socket, sweeps its
//!    address list, and resumes on the replacement.

use pp_nn::{zoo, ScaledModel};
use pp_stream::journal::JOURNAL_MAGIC;
use pp_stream::{
    FaultPlan, FsyncPolicy, JournalConfig, JournalRecord, ModelProvider, NetConfig,
    NetworkedSession, PpStream, PpStreamConfig, ServeOptions,
};
use pp_stream_runtime::wire::{Decoder, WireDecode};
use pp_stream_runtime::RetryPolicy;
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the engineered stall parks the client: long enough to cover
/// the kill + restart + journal restore of the replacement child, short
/// enough to keep the test quick. The failover retry budget below adds
/// several more seconds of slack on top.
const STALL: Duration = Duration::from_secs(4);

fn mlp_model(name: &str) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp(name, &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn stream_inputs(n: u64) -> Vec<Tensor<f64>> {
    (0..n)
        .map(|seq| {
            Tensor::from_flat(
                (0..4u64).map(|j| ((seq * 4 + j) as f64 * 0.37).sin()).collect::<Vec<f64>>(),
            )
        })
        .collect()
}

/// Unique scratch directory per test (no tempfile crate in the
/// dependency policy — DESIGN.md §12).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pp-crash-{}-{}", std::process::id(), tag));
    // A stale dir from a previous run of the same pid namespace would
    // hand child 1 a non-empty journal; start clean.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Two distinct free ports, picked by binding both before releasing
/// either (sequential bind/drop could hand back the same port twice).
fn pick_ports() -> (u16, u16) {
    let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
    let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
    (l1.local_addr().expect("addr").port(), l2.local_addr().expect("addr").port())
}

/// A spawned server child that is SIGKILLed if the test panics before
/// reaping it — an aborted assertion must not leak a process that
/// keeps the test harness's output pipes open forever.
struct ChildGuard(Option<Child>);

impl ChildGuard {
    fn kill(&mut self) {
        let mut child = self.0.take().expect("child already reaped");
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");
    }

    fn wait(&mut self) -> std::process::ExitStatus {
        self.0.take().expect("child already reaped").wait().expect("child exit")
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns this very test binary in server-child mode: the `#[ignore]`d
/// `crash_server_child` test below, selected with `--exact --ignored`.
/// `PP_EVLOOP` (and the rest of the environment) is inherited, so the
/// CI gate exercises both serve paths by exporting it around the run.
/// Stdout/stderr go to a log file in the scratch dir: inheriting the
/// harness's pipes would hold them open past the parent test's exit.
fn spawn_child(
    port: u16,
    dir: &Path,
    fsync: &str,
    seed: u64,
    ready: &Path,
    report: &Path,
) -> ChildGuard {
    let log = std::fs::File::create(dir.join(format!("child-{port}.log"))).expect("child log");
    let child = Command::new(std::env::current_exe().expect("current exe"))
        .args(["crash_server_child", "--exact", "--ignored", "--nocapture"])
        .env("PP_CRASH_PORT", port.to_string())
        .env("PP_CRASH_DIR", dir)
        .env("PP_CRASH_FSYNC", fsync)
        .env("PP_CRASH_SEED", seed.to_string())
        .env("PP_CRASH_READY", ready)
        .env("PP_CRASH_REPORT", report)
        .env("PP_CRASH_STOP", dir.join("stop"))
        .stdout(Stdio::from(log.try_clone().expect("dup log")))
        .stderr(Stdio::from(log))
        .spawn()
        .expect("spawn server child");
    ChildGuard(Some(child))
}

fn wait_for_file(path: &Path, deadline: Duration) -> String {
    let until = Instant::now() + deadline;
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            if !s.is_empty() {
                return s;
            }
        }
        assert!(Instant::now() < until, "timed out waiting for {}", path.display());
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Pulls `key=value` out of a child's banner/report file.
fn parse_field(s: &str, key: &str) -> u64 {
    s.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .unwrap_or_else(|| panic!("field {key} missing from {s:?}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("field {key} not a number in {s:?}"))
}

/// Read-only scan of the journal for the highest `Started` floor.
///
/// The real [`pp_stream::Journal::open`] repairs torn tails *in place*,
/// which must never race the child's appends — so the parent walks the
/// raw frames itself and simply stops at the first incomplete or
/// undecodable one (a half-written tail just ends the scan early, which
/// polling tolerates).
fn started_floor(path: &Path) -> u64 {
    let Ok(raw) = std::fs::read(path) else { return 0 };
    if raw.len() < JOURNAL_MAGIC.len() || raw[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC[..] {
        return 0;
    }
    let mut pos = JOURNAL_MAGIC.len();
    let mut floor = 0u64;
    // Frame = u32 len | u64 checksum | payload (see journal.rs).
    while pos + 12 <= raw.len() {
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(payload) = raw.get(pos + 12..pos + 12 + len) else { break };
        let mut dec = Decoder::new(bytes::Bytes::from(payload.to_vec()));
        match JournalRecord::decode(&mut dec) {
            Ok(JournalRecord::Started { started, .. }) => floor = floor.max(started),
            Ok(_) => {}
            Err(_) => break,
        }
        pos += 12 + len;
    }
    floor
}

/// The full kill/restart/failover scenario. `stall_at` must be odd:
/// fault wrapping is post-handshake, so receive `2k + 1` is the
/// *round-0* reply of item `k`. Freezing there pins the whole world —
/// round 0 of item `k` is on the wire (so the client will count a
/// replay), and the server cannot finish the item (it never gets the
/// round-1 request), so the kill cannot race against "item `k`
/// already completed". An even index (a round-1 reply) would leave
/// exactly that race: the server may have fully answered the item
/// before the SIGKILL lands, and neither side replays anything.
fn crash_failover(tag: &str, seed: u64, stall_at: u64, fsync: &str) {
    assert_eq!(stall_at % 2, 1, "stall on a round-0 reply (see above)");
    let scaled = mlp_model("crash-mlp");
    let dir = scratch_dir(tag);
    let journal_path = dir.join("sessions.journal");
    let (port1, port2) = pick_ports();
    let addr1: SocketAddr = format!("127.0.0.1:{port1}").parse().expect("addr");
    let addr2: SocketAddr = format!("127.0.0.1:{port2}").parse().expect("addr");

    let ready1 = dir.join("ready1");
    let ready2 = dir.join("ready2");
    let report2_path = dir.join("report2");

    let mut child1 = spawn_child(port1, &dir, fsync, seed, &ready1, &dir.join("report1"));
    let banner1 = wait_for_file(&ready1, Duration::from_secs(60));
    assert_eq!(parse_field(&banner1, "restored"), 0, "a fresh journal restores nothing");

    let mut config = NetConfig::small_test(128);
    config.seed = seed;
    // Generous failover budget: the sweep only has to outlast however
    // much of the restart window the stall did not already cover.
    config.tcp = config.tcp.clone().with_retry(RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(100),
        max_delay: Duration::from_millis(800),
        jitter: true,
    });
    config.fault =
        Some(FaultPlan { seed, stall: Some(STALL), stall_at: Some(stall_at), ..Default::default() });

    let items = stream_inputs(12);
    let client_scaled = scaled.clone();
    let client_items = items.clone();
    let client = std::thread::spawn(move || {
        let mut session = NetworkedSession::connect_any(&[addr1, addr2], client_scaled, &config)
            .expect("connect to the primary");
        let (got, report) =
            session.infer_stream(&client_items).expect("the stream must survive the crash");
        let transport = session.shutdown();
        (got, report, transport)
    });

    // The frozen client has round 0 of item k in flight. Wait until the
    // journal proves the server started (and durably recorded) it, so
    // both sides will count exactly that item as replayed.
    let stall_item = (stall_at - 1) / 2;
    let target = stall_item + 1;
    let until = Instant::now() + Duration::from_secs(60);
    while started_floor(&journal_path) < target {
        assert!(Instant::now() < until, "journal never reached started floor {target}");
        std::thread::sleep(Duration::from_millis(10));
    }
    child1.kill();

    let mut child2 = spawn_child(port2, &dir, fsync, seed, &ready2, &report2_path);
    let banner2 = wait_for_file(&ready2, Duration::from_secs(60));
    assert_eq!(parse_field(&banner2, "restored"), 1, "the pre-crash session must be restored");

    let (got, report, transport) = client.join().expect("client thread");
    std::fs::write(dir.join("stop"), b"done").expect("stop file");
    let status = child2.wait();
    assert!(status.success(), "restarted provider must exit cleanly");
    let rep2 = std::fs::read_to_string(&report2_path).expect("report 2");

    assert!(transport.clean_shutdown, "the Bye reached the replacement");
    assert!(transport.reconnects >= 1, "the kill must force a reconnect");
    assert!(transport.failovers >= 1, "the reconnect must land on the second address");
    assert_eq!(transport.faults_injected, 1, "exactly the engineered stall fired");
    assert_eq!(transport.items_replayed, 1, "exactly the in-flight item is replayed");
    assert_eq!(
        parse_field(&rep2, "replayed_items"),
        transport.items_replayed,
        "client and restarted server must agree exactly on replays"
    );
    assert!(parse_field(&rep2, "resumed_sessions") >= 1, "the resume hit the new process");
    assert!(report.transport.expect("transport stats").reconnects >= 1);

    // The acceptance bar: a crash + failover changes nothing about the
    // outputs — bit-identical to the in-process pipeline.
    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.data(), w.data(), "item {i} diverged after crash recovery");
    }
}

#[test]
fn crash_kill_schedule_a_fsync_always() {
    // Freeze at receive 11 ⇒ item 5 mid-flight; power-loss-durable
    // journal.
    crash_failover("schedule-a", 0xA11CE, 11, "always");
}

#[test]
fn crash_kill_schedule_b_fsync_never() {
    // Freeze at receive 7 ⇒ item 3 mid-flight; page-cache durability is
    // enough for SIGKILL (the kernel owns the pages once write returns).
    crash_failover("schedule-b", 0x0B0B_51ED, 7, "never");
}

/// Not a test: the server child the scenarios above spawn (hence
/// `#[ignore]` — it only runs when selected `--exact --ignored` with
/// the `PP_CRASH_*` environment set). Binds the given port, restores
/// the session journal, serves until the stop file appears, then writes
/// its report for the parent's assertions.
#[test]
#[ignore = "server-child entry point, spawned by the crash tests"]
fn crash_server_child() {
    let Ok(port) = std::env::var("PP_CRASH_PORT") else { return };
    let port: u16 = port.parse().expect("port");
    let dir = PathBuf::from(std::env::var("PP_CRASH_DIR").expect("dir"));
    let fsync = match std::env::var("PP_CRASH_FSYNC").as_deref() {
        Ok(v) => FsyncPolicy::parse(v),
        Err(_) => FsyncPolicy::Never,
    };
    let seed: u64 = std::env::var("PP_CRASH_SEED").expect("seed").parse().expect("seed");
    let ready = PathBuf::from(std::env::var("PP_CRASH_READY").expect("ready"));
    let report_path = PathBuf::from(std::env::var("PP_CRASH_REPORT").expect("report"));
    let stop = PathBuf::from(std::env::var("PP_CRASH_STOP").expect("stop"));

    let scaled = mlp_model("crash-mlp");
    let mut config = NetConfig::small_test(128);
    config.seed = seed;
    let provider = Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let jcfg = JournalConfig { dir: dir.clone(), fsync };
    // Open explicitly (rather than only via ServeOptions) to learn the
    // restored-session count before accepting traffic.
    let restored = provider.open_journal(&jcfg).expect("journal");
    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind");
    let options = ServeOptions { journal: Some(jcfg), ..ServeOptions::default() };
    let handle = provider.serve_forever(listener, options).expect("serve");
    // The ready banner doubles as the restore report.
    std::fs::write(&ready, format!("restored={restored}\n")).expect("ready file");
    while !stop.exists() {
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = handle.shutdown();
    std::fs::write(
        &report_path,
        format!(
            "restored={restored}\nreplayed_items={}\nresumed_sessions={}\nrequests={}\n",
            report.replayed_items, report.resumed_sessions, report.requests
        ),
    )
    .expect("report file");
}
