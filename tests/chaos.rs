//! Chaos/soak tests: deterministic fault injection against the
//! two-process deployment (requires the `fault-injection` feature).
//!
//! The headline assertion: with the connection killed on every Nth sent
//! frame, a 200-item stream still produces **bit-identical** outputs to
//! the in-process pipeline, reconnect-and-resume absorbs every kill, and
//! the replay accounting agrees between client and server — so no
//! delivered item's Paillier evaluations are ever repeated.
//!
//! `PP_FAULT_SEED` overrides the fault seed, letting CI soak the same
//! schedule under different corruption/jitter draws without recompiling.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{
    FaultPlan, ModelProvider, NetConfig, NetworkedSession, PpStream, PpStreamConfig,
};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn mlp_model(name: &str) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp(name, &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn stream_inputs(n: u64) -> Vec<Tensor<f64>> {
    (0..n)
        .map(|seq| {
            Tensor::from_flat(
                (0..4u64).map(|j| ((seq * 4 + j) as f64 * 0.37).sin()).collect::<Vec<f64>>(),
            )
        })
        .collect()
}

fn fault_seed() -> u64 {
    std::env::var("PP_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x00C0_FFEE)
}

/// Drives 200 items through a transport that kills the connection on
/// every `kill_every`-th sent frame and checks the full fault-tolerance
/// contract.
fn kill_soak(kill_every: u64) {
    let scaled = mlp_model("chaos-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(kill_every), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(200);
    let (got, report) = session.infer_stream(&items).expect("soak survives the kills");
    let transport = session.shutdown();
    assert!(transport.clean_shutdown, "the Bye must get through, reconnecting if needed");
    assert!(transport.reconnects > 0, "the kill schedule must actually fire");
    assert!(transport.faults_injected > 0);
    assert!(
        transport.faults_injected >= transport.reconnects,
        "every reconnect is fault-triggered: {} faults vs {} reconnects",
        transport.faults_injected,
        transport.reconnects
    );
    assert!(report.transport.expect("transport stats").reconnects > 0);

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert!(server_report.requests >= 200, "every item's linear rounds completed");
    assert!(server_report.resumed_sessions as u64 >= transport.reconnects);
    assert_eq!(
        server_report.replayed_items, transport.items_replayed,
        "client and server must agree on exactly which items were replayed"
    );

    // The acceptance bar: identical outputs to the in-process pipeline,
    // bit for bit, kills or no kills.
    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.data(), w.data(), "item {i} diverged from the in-process pipeline");
    }
}

#[test]
fn chaos_kill_every_3_bit_identical_soak() {
    // k=3 lands every kill on an ack frame (3 sends per item), so the
    // soak exercises reconnects on *every* item without replays.
    kill_soak(3);
}

#[test]
fn chaos_kill_every_17_bit_identical_soak() {
    // k=17 walks the kill position across the round-0/round-1/ack
    // phases, so some kills interrupt an item mid-flight and force a
    // replay from round 0 — which the accounting must show.
    kill_soak(17);
}

#[test]
fn chaos_kill_every_17_forces_replays() {
    // Pinned companion to the soak above: a kill that lands after a
    // round-0 send must surface as a replayed item on both ends.
    let scaled = mlp_model("chaos-replay-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(17), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session = NetworkedSession::connect(addr, scaled, &config).expect("connect");
    session.infer_stream(&stream_inputs(20)).expect("inference");
    let transport = session.shutdown();
    assert!(transport.items_replayed > 0, "a mid-item kill must be replayed");

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.replayed_items, transport.items_replayed);
}

#[test]
fn corrupt_frame_is_fatal_not_silent() {
    // Bit corruption in a reply's header region must surface as an
    // immediate error — never silently wrong ciphertexts, and never an
    // endless resume loop (corruption is not a transient fault).
    let scaled = mlp_model("corrupt-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), corrupt_every: Some(1), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session = NetworkedSession::connect(addr, scaled, &config).expect("connect");
    let err = session
        .classify_stream(&stream_inputs(1))
        .expect_err("a corrupted reply must not produce a classification");
    let text = err.to_string().to_lowercase();
    assert!(
        text.contains("decode") || text.contains("stage") || text.contains("corrupt"),
        "corruption must be named, got: {text}"
    );
    assert_eq!(session.transport().reconnects, 0, "corruption must not trigger resume");

    // The connection itself is healthy; a clean Bye releases the server.
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert!(transport.faults_injected > 0);
    server.join().expect("server thread");
}

#[test]
fn expired_session_rejects_resume() {
    // With a zero TTL every dropped session expires before the client
    // can resume it: the resume must be *rejected* (exactly-once state
    // is gone), surfacing the original failure plus the rejection — and
    // the server must keep serving fresh clients afterwards.
    let scaled = mlp_model("ttl-mlp");
    let mut config = NetConfig::small_test(128);
    config.session_ttl = Duration::ZERO;
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(3), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session = NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect");
    let err = session
        .classify_stream(&stream_inputs(5))
        .expect_err("resume into an expired session must fail");
    let text = err.to_string();
    assert!(text.contains("after failed resume"), "{text}");
    assert!(text.contains("unknown or expired"), "{text}");

    // A fresh hello (no resume involved) still works.
    let mut fresh_config = config.clone();
    fresh_config.fault = None;
    let mut fresh =
        NetworkedSession::connect(addr, scaled, &fresh_config).expect("fresh client connects");
    fresh.classify_stream(&stream_inputs(1)).expect("inference after the expired session");
    assert!(fresh.shutdown().clean_shutdown);

    let report = server.join().expect("server thread");
    assert!(report.rejected_handshakes >= 1, "the expired resume was rejected");
    assert!(report.clean_shutdown);
}
