//! Chaos/soak tests: deterministic fault injection against the
//! two-process deployment (requires the `fault-injection` feature).
//!
//! The headline assertion: with the connection killed on every Nth sent
//! frame, a 200-item stream still produces **bit-identical** outputs to
//! the in-process pipeline, reconnect-and-resume absorbs every kill, and
//! the replay accounting agrees between client and server — so no
//! delivered item's Paillier evaluations are ever repeated.
//!
//! `PP_FAULT_SEED` overrides the fault seed, letting CI soak the same
//! schedule under different corruption/jitter draws without recompiling.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{
    FaultPlan, ItemErrorKind, ItemOutcome, ModelProvider, NetConfig, NetworkedSession, PpStream,
    PpStreamConfig, ServeOptions,
};
use pp_stream_runtime::RetryPolicy;
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn mlp_model(name: &str) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp(name, &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn stream_inputs(n: u64) -> Vec<Tensor<f64>> {
    (0..n)
        .map(|seq| {
            Tensor::from_flat(
                (0..4u64).map(|j| ((seq * 4 + j) as f64 * 0.37).sin()).collect::<Vec<f64>>(),
            )
        })
        .collect()
}

fn fault_seed() -> u64 {
    std::env::var("PP_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x00C0_FFEE)
}

/// Drives 200 items through a transport that kills the connection on
/// every `kill_every`-th sent frame and checks the full fault-tolerance
/// contract.
fn kill_soak(kill_every: u64) {
    let scaled = mlp_model("chaos-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(kill_every), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(200);
    let (got, report) = session.infer_stream(&items).expect("soak survives the kills");
    let transport = session.shutdown();
    assert!(transport.clean_shutdown, "the Bye must get through, reconnecting if needed");
    assert!(transport.reconnects > 0, "the kill schedule must actually fire");
    assert!(transport.faults_injected > 0);
    assert!(
        transport.faults_injected >= transport.reconnects,
        "every reconnect is fault-triggered: {} faults vs {} reconnects",
        transport.faults_injected,
        transport.reconnects
    );
    assert!(report.transport.expect("transport stats").reconnects > 0);

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert!(server_report.requests >= 200, "every item's linear rounds completed");
    assert!(server_report.resumed_sessions as u64 >= transport.reconnects);
    assert_eq!(
        server_report.replayed_items, transport.items_replayed,
        "client and server must agree on exactly which items were replayed"
    );

    // The acceptance bar: identical outputs to the in-process pipeline,
    // bit for bit, kills or no kills.
    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.data(), w.data(), "item {i} diverged from the in-process pipeline");
    }
}

#[test]
fn chaos_kill_every_3_bit_identical_soak() {
    // k=3 lands every kill on an ack frame (3 sends per item), so the
    // soak exercises reconnects on *every* item without replays.
    kill_soak(3);
}

#[test]
fn chaos_kill_every_17_bit_identical_soak() {
    // k=17 walks the kill position across the round-0/round-1/ack
    // phases, so some kills interrupt an item mid-flight and force a
    // replay from round 0 — which the accounting must show.
    kill_soak(17);
}

#[test]
fn chaos_kill_every_17_forces_replays() {
    // Pinned companion to the soak above: a kill that lands after a
    // round-0 send must surface as a replayed item on both ends.
    let scaled = mlp_model("chaos-replay-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(17), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session = NetworkedSession::connect(addr, scaled, &config).expect("connect");
    session.infer_stream(&stream_inputs(20)).expect("inference");
    let transport = session.shutdown();
    assert!(transport.items_replayed > 0, "a mid-item kill must be replayed");

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.replayed_items, transport.items_replayed);
}

#[test]
fn corrupt_frame_is_fatal_not_silent() {
    // Bit corruption in a reply's header region must surface as an
    // immediate error — never silently wrong ciphertexts, and never an
    // endless resume loop (corruption is not a transient fault).
    let scaled = mlp_model("corrupt-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), corrupt_every: Some(1), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session = NetworkedSession::connect(addr, scaled, &config).expect("connect");
    let err = session
        .classify_stream(&stream_inputs(1))
        .expect_err("a corrupted reply must not produce a classification");
    let text = err.to_string().to_lowercase();
    assert!(
        text.contains("decode") || text.contains("stage") || text.contains("corrupt"),
        "corruption must be named, got: {text}"
    );
    assert_eq!(session.transport().reconnects, 0, "corruption must not trigger resume");

    // The connection itself is healthy; a clean Bye releases the server.
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert!(transport.faults_injected > 0);
    server.join().expect("server thread");
}

#[test]
fn chaos_stalled_reads_recovered_by_watchdog_soak() {
    // Every 7th receive stalls for 80ms — past the 40ms watchdog window
    // but nowhere near the 30s TCP read timeout. The client's stall
    // watchdog must diagnose each stall as `Stalled`, recover it by
    // reconnect-and-resume (replaying the interrupted item), and still
    // deliver bit-identical outputs over 200 items.
    let scaled = mlp_model("stall-mlp");
    let mut config = NetConfig::small_test(128);
    config.stall_window = Some(Duration::from_millis(40));
    config.fault = Some(FaultPlan {
        seed: fault_seed(),
        stall: Some(Duration::from_millis(80)),
        stall_every: Some(7),
        ..Default::default()
    });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(200);
    let (got, _) = session.infer_stream(&items).expect("soak survives the stalls");
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert!(transport.stalls > 0, "the stall schedule must trip the watchdog");
    assert_eq!(
        transport.reconnects, transport.stalls,
        "every stall is recovered by exactly one resume (and nothing else fails)"
    );
    assert!(transport.items_replayed > 0, "a stalled round reply replays its item");

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert_eq!(
        server_report.replayed_items, transport.items_replayed,
        "client and server must agree on exactly which items were replayed"
    );

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.data(), w.data(), "item {i} diverged from the in-process pipeline");
    }
}

#[test]
fn chaos_busy_rejection_is_retried_after_backoff() {
    // Admission control at a one-session cap: while client A holds the
    // slot, client B's hello is answered with `Reject { code: Busy }`
    // and a retry hint. B must back off on the hint and get served once
    // A leaves — and both sides must count every rejection.
    let scaled = mlp_model("busy-mlp");
    let mut config = NetConfig::small_test(128);
    // B needs a retry budget deep enough to outlast A's whole stream.
    config.tcp.retry = RetryPolicy {
        max_attempts: 60,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        jitter: false,
    };

    let provider = Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options = ServeOptions {
        max_sessions: Some(1),
        retry_after: Duration::from_millis(20),
        ..ServeOptions::default()
    };
    let handle = provider.serve_forever(listener, options).expect("spawn server");
    let addr = handle.addr();

    // Client A occupies the only session slot...
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let a_scaled = scaled.clone();
    let a_config = config.clone();
    let a = std::thread::spawn(move || {
        let mut session =
            NetworkedSession::connect(addr, a_scaled, &a_config).expect("A connects");
        started_tx.send(()).expect("signal");
        let (out, _) = session.infer_stream(&stream_inputs(4)).expect("A inference");
        let transport = session.shutdown();
        assert!(transport.clean_shutdown);
        assert_eq!(transport.rejected_busy, 0, "A arrived at an idle server");
        out
    });
    started_rx.recv().expect("A handshaken");

    // ...so client B is busy-rejected, honors the backoff hint, and is
    // served after A's Bye frees the slot.
    let mut b = NetworkedSession::connect(addr, scaled, &config).expect("B retries in");
    let (b_out, _) = b.infer_stream(&stream_inputs(4)).expect("B inference");
    let b_transport = b.shutdown();
    assert!(b_transport.clean_shutdown);
    assert!(b_transport.rejected_busy > 0, "B must have absorbed at least one Busy");

    let a_out = a.join().expect("client A");
    // Same inputs, same seed: the serialized clients compute the same
    // stream, bit for bit.
    for (i, (x, y)) in a_out.iter().zip(&b_out).enumerate() {
        assert_eq!(x.data(), y.data(), "item {i} diverged between the two clients");
    }

    let report = handle.shutdown();
    assert_eq!(report.rejected_busy, b_transport.rejected_busy, "both sides count every Busy");
    assert_eq!(report.requests, 8, "2 clients x 4 items each");
    assert_eq!(report.failed_connections, 0);
    assert_eq!(report.panicked_connections, 0);
    assert!(report.clean_shutdown);
}

#[test]
fn chaos_poison_item_quarantined_stream_survives() {
    // Item 13 panics the model provider's linear stage. The panic must
    // be contained to that one item: the client sees a single
    // `Quarantined` outcome, the other 199 items complete bit-identical
    // to the in-process pipeline, and both sides agree on the count.
    let scaled = mlp_model("poison-mlp");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), poison_seq: Some(13), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(200);
    let (outcomes, _) =
        session.infer_stream_partial(&items).expect("the stream survives the poison item");
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert_eq!(transport.quarantined, 1, "exactly one quarantine reply");
    assert_eq!(transport.reconnects, 0, "a poison panic is per-item, not a transport fault");

    let failed: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.output().is_none())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed, vec![13], "exactly the poisoned seq fails");
    match &outcomes[13] {
        ItemOutcome::Failed { kind, detail } => {
            assert_eq!(*kind, ItemErrorKind::Quarantined);
            assert!(detail.contains("panicked"), "detail must name the panic: {detail}");
        }
        ItemOutcome::Done(_) => unreachable!("outcome 13 failed above"),
    }

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert_eq!(server_report.quarantined, transport.quarantined);
    assert_eq!(server_report.requests, 199, "the poisoned item's rounds never complete");

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    for (i, (o, w)) in outcomes.iter().zip(&want).enumerate() {
        if i == 13 {
            continue;
        }
        assert_eq!(
            o.output().expect("non-poisoned items complete").data(),
            w.data(),
            "item {i} diverged from the in-process pipeline"
        );
    }
}

#[test]
fn chaos_saturation_sheds_excess_clients_without_failures() {
    // Five clients stampede a server admission-capped at two concurrent
    // sessions. The surplus must be busy-rejected (not queued, not
    // crashed), every client must eventually be served after backoff,
    // and the admitted work must stay bit-identical across clients.
    let scaled = mlp_model("saturate-mlp");
    let mut config = NetConfig::small_test(128);
    config.tcp.retry = RetryPolicy {
        max_attempts: 120,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        jitter: true,
    };

    let provider = Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options = ServeOptions {
        max_workers: 2,
        max_sessions: Some(2),
        retry_after: Duration::from_millis(15),
        ..ServeOptions::default()
    };
    let handle = provider.serve_forever(listener, options).expect("spawn server");
    let addr = handle.addr();

    let items = stream_inputs(3);
    let mut clients = Vec::new();
    for _ in 0..5 {
        let scaled = scaled.clone();
        let config = config.clone();
        let items = items.clone();
        clients.push(std::thread::spawn(move || {
            let mut session =
                NetworkedSession::connect(addr, scaled, &config).expect("eventually admitted");
            let (out, _) = session.infer_stream(&items).expect("inference");
            let transport = session.shutdown();
            assert!(transport.clean_shutdown);
            (out, transport.rejected_busy)
        }));
    }
    let results: Vec<(Vec<Tensor<i64>>, u64)> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();

    let client_busy: u64 = results.iter().map(|(_, b)| b).sum();
    assert!(client_busy > 0, "five clients against a cap of two must see Busy");
    for (out, _) in &results {
        assert_eq!(out.len(), items.len());
        for (i, (g, w)) in out.iter().zip(&results[0].0).enumerate() {
            assert_eq!(g.data(), w.data(), "admitted item {i} diverged between clients");
        }
    }

    let report = handle.shutdown();
    assert_eq!(report.rejected_busy, client_busy, "client and server agree on every Busy");
    assert_eq!(report.requests, 15, "5 clients x 3 items, all served eventually");
    assert_eq!(report.failed_connections, 0);
    assert_eq!(report.panicked_connections, 0);
    assert_eq!(
        report.connections,
        5 + report.rejected_busy,
        "every connection was either served or busy-rejected"
    );
    assert!(report.clean_shutdown);
}

/// A factor-100 model small enough for 32-bit packed slots on a 128-bit
/// key (3 members per ciphertext) — the chaos default's 10⁴ factor
/// overflows any packable slot width.
fn packed_mlp_model(name: &str) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp(name, &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 100)
}

#[test]
fn chaos_packed_kill_soak_bit_identical() {
    // Kills landing mid-packed-round: the interrupted batch falls back
    // to per-item replay, the reconnect drops packing for the rest of
    // the stream, and every item still completes exactly once with
    // bit-identical outputs to the in-process pipeline.
    let scaled = packed_mlp_model("packed-kill-mlp");
    let mut config = NetConfig::small_test(128);
    config.pack_slot_bits = 32;
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(3), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(60);
    let (got, _) = session.infer_stream(&items).expect("soak survives the kills");
    let transport = session.shutdown();
    assert!(transport.clean_shutdown, "the Bye must get through, reconnecting if needed");
    assert!(transport.packed_items >= 3, "at least the first batch travels packed");
    assert!(transport.packed_fallbacks > 0, "a kill mid-batch must fall back to per-item");
    assert!(transport.reconnects > 0, "the kill schedule must actually fire");
    assert!(transport.faults_injected > 0);

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert!(
        server_report.requests >= 60,
        "every member's linear rounds completed (kills may replay an unacked one)"
    );
    assert!(
        server_report.replayed_items >= transport.items_replayed,
        "packed-fallback replays are intra-connection — only the server counts them: \
         {} server vs {} client",
        server_report.replayed_items,
        transport.items_replayed
    );

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.data(), w.data(), "item {i} diverged from the in-process pipeline");
    }
}

#[test]
fn chaos_packed_poison_aborts_batch_and_quarantines_item() {
    // A poison member inside a packed batch: the server aborts the
    // *batch* (one PackedAbort, no batch-level quarantine), the client
    // replays its members unpacked over the same connection, and only
    // then does the per-item protocol quarantine the poisoned seq. The
    // surrounding batches stay packed and bit-identical.
    let scaled = packed_mlp_model("packed-poison-mlp");
    let mut config = NetConfig::small_test(128);
    config.pack_slot_bits = 32;
    config.fault =
        Some(FaultPlan { seed: fault_seed(), poison_seq: Some(4), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(9); // batches (0,1,2) (3,4,5) (6,7,8); seq 4 is poisoned
    let (outcomes, _) =
        session.infer_stream_partial(&items).expect("the stream survives the poison member");
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert_eq!(transport.packed_fallbacks, 1, "exactly the poisoned batch falls back");
    assert_eq!(transport.packed_items, 6, "the two healthy batches stay packed");
    assert_eq!(transport.quarantined, 1, "exactly one quarantine reply");
    assert_eq!(transport.reconnects, 0, "a packed abort never tears the connection down");

    let failed: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.output().is_none())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed, vec![4], "exactly the poisoned member fails");
    match &outcomes[4] {
        ItemOutcome::Failed { kind, detail } => {
            assert_eq!(*kind, ItemErrorKind::Quarantined);
            assert!(detail.contains("panicked"), "detail must name the panic: {detail}");
        }
        ItemOutcome::Done(_) => unreachable!("outcome 4 failed above"),
    }

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert_eq!(server_report.packed_aborts, 1, "one abort for the poisoned batch");
    assert_eq!(server_report.quarantined, 1, "quarantine happens on the unpacked replay");
    assert_eq!(server_report.requests, 8, "the poisoned member never completes");
    assert_eq!(
        server_report.replayed_items, 3,
        "all three batch members replay unpacked after the abort"
    );

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    for (i, (o, w)) in outcomes.iter().zip(&want).enumerate() {
        if i == 4 {
            continue;
        }
        assert_eq!(
            o.output().expect("healthy members complete").data(),
            w.data(),
            "item {i} diverged from the in-process pipeline"
        );
    }
}

#[test]
fn expired_session_rejects_resume() {
    // With a zero TTL every dropped session expires before the client
    // can resume it: the resume must be *rejected* (exactly-once state
    // is gone), surfacing the original failure plus the rejection — and
    // the server must keep serving fresh clients afterwards.
    let scaled = mlp_model("ttl-mlp");
    let mut config = NetConfig::small_test(128);
    config.session_ttl = Duration::ZERO;
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(3), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session = NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect");
    let err = session
        .classify_stream(&stream_inputs(5))
        .expect_err("resume into an expired session must fail");
    let text = err.to_string();
    assert!(text.contains("after failed resume"), "{text}");
    assert!(text.contains("unknown or expired"), "{text}");

    // A fresh hello (no resume involved) still works.
    let mut fresh_config = config.clone();
    fresh_config.fault = None;
    let mut fresh =
        NetworkedSession::connect(addr, scaled, &fresh_config).expect("fresh client connects");
    fresh.classify_stream(&stream_inputs(1)).expect("inference after the expired session");
    assert!(fresh.shutdown().clean_shutdown);

    let report = server.join().expect("server thread");
    assert!(report.rejected_handshakes >= 1, "the expired resume was rejected");
    assert!(report.clean_shutdown);
}

#[test]
fn chaos_resume_with_fixed_base_refill_is_deterministic() {
    // The blinding-factor pool now refills through the per-key
    // fixed-base comb table (shared process-wide). A session that dies
    // and resumes mid-stream must still replay bit-identically to a
    // clean in-process run: the table is derived deterministically from
    // the key, so a reconnect — or a second session under the same
    // key — walks the exact same factor stream.
    let scaled = mlp_model("chaos-fixed-base");
    let mut config = NetConfig::small_test(128);
    config.fault =
        Some(FaultPlan { seed: fault_seed(), kill_every: Some(11), ..Default::default() });

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let hits_before = pp_paillier::shared_refill_cache().hits();
    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let items = stream_inputs(60);
    let (got, report) = session.infer_stream(&items).expect("stream survives the kills");
    let transport = session.shutdown();
    assert!(transport.reconnects > 0, "the kill schedule must force at least one resume");
    // Replayed items re-encrypt past the precomputed pool, so misses are
    // expected here — the point is that neither pooled (fixed-base) nor
    // fallback (inline r^n) blinding perturbs the decrypted stream.
    let _ = report.pool_misses;
    server.join().expect("server thread");

    // Clean reference run, same seeds: the in-process pipeline derives
    // the same key, hits the same shared table, and must agree bit for
    // bit with the killed-and-resumed networked stream.
    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&items).expect("in-process inference");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.data(), w.data(), "item {i} diverged after resume with fixed-base refill");
    }
    assert!(
        pp_paillier::shared_refill_cache().hits() > hits_before,
        "sessions under one key must reuse the shared fixed-base table, not rebuild it"
    );
}
