//! Serving-at-scale soak: many concurrent sessions against one
//! supervised server, asserting *exact* counter agreement between the
//! server's [`ServeReport`] and the sum of every client's
//! [`TransportReport`] — and that a drained server leaks no session
//! state. The CI smoke form runs 64 sessions; the full 1k-session soak
//! is `--ignored` (run it with `cargo test --release -- --ignored`).

use pp_nn::{zoo, ScaledModel};
use pp_stream::{ModelProvider, NetConfig, NetworkedSession, ServeOptions, TransportReport};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn mlp_model(name: &str, widths: &[usize]) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp(name, widths, &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn stream_inputs(n: u64, width: usize) -> Vec<Tensor<f64>> {
    (0..n)
        .map(|seq| {
            Tensor::from_flat(
                (0..width as u64)
                    .map(|j| ((seq * width as u64 + j) as f64 * 0.37).sin())
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

/// Runs `n_clients` concurrent sessions of `items_per_client` items
/// each and checks the books balance to the frame and the byte.
fn soak(n_clients: usize, items_per_client: u64, gather_window: Duration) {
    let scaled = mlp_model("soak-mlp", &[4, 6, 3]);
    let mut config = NetConfig::small_test(128);
    config.threads = 1; // keep per-client pools from multiplying threads

    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options = ServeOptions { gather_window, ..ServeOptions::default() };
    let handle =
        std::sync::Arc::clone(&provider).serve_forever(listener, options).expect("spawn server");
    let addr = handle.addr();

    let inputs = stream_inputs(items_per_client, 4);
    let clients: Vec<_> = (0..n_clients)
        .map(|i| {
            let scaled = scaled.clone();
            let config = config.clone();
            let inputs = inputs.clone();
            std::thread::Builder::new()
                .name(format!("soak-client-{i}"))
                .spawn(move || {
                    // Staggered connect waves so a (bounded) accept
                    // backlog never refuses the tail of a 1k herd.
                    std::thread::sleep(Duration::from_millis((i as u64 / 64) * 20));
                    let mut session = {
                        let mut attempt = 0;
                        loop {
                            match NetworkedSession::connect(addr, scaled.clone(), &config) {
                                Ok(s) => break s,
                                Err(e) if attempt < 5 => {
                                    attempt += 1;
                                    std::thread::sleep(Duration::from_millis(50 * attempt));
                                    let _ = e;
                                }
                                Err(e) => panic!("client {i} cannot connect: {e}"),
                            }
                        }
                    };
                    let (classes, _) =
                        session.classify_stream_partial(&inputs).expect("inference");
                    (classes, session.shutdown())
                })
                .expect("spawn client")
        })
        .collect();

    let mut transports: Vec<TransportReport> = Vec::with_capacity(n_clients);
    let mut all_classes = Vec::with_capacity(n_clients);
    for c in clients {
        let (classes, transport) = c.join().expect("client thread");
        assert_eq!(classes.len(), items_per_client as usize);
        assert!(classes.iter().all(|c| c.is_some()), "every item must resolve successfully");
        assert!(transport.clean_shutdown, "every session must end with a Bye");
        all_classes.push(classes);
        transports.push(transport);
    }
    assert!(all_classes.windows(2).all(|w| w[0] == w[1]), "same inputs, same classes");

    let report = handle.shutdown();
    assert_eq!(
        provider.active_sessions(),
        0,
        "a drained server must not leak session-table entries"
    );

    // The books must balance exactly: what the clients sent is what the
    // server received, and vice versa, frame for frame and byte for byte.
    let sent: u64 = transports.iter().map(|t| t.frames_sent).sum();
    let received: u64 = transports.iter().map(|t| t.frames_received).sum();
    let bytes_sent: u64 = transports.iter().map(|t| t.bytes_sent).sum();
    let bytes_received: u64 = transports.iter().map(|t| t.bytes_received).sum();
    assert_eq!(report.frames_in, sent, "server frames_in vs summed client frames_sent");
    assert_eq!(report.frames_out, received, "server frames_out vs summed client frames_received");
    assert_eq!(report.bytes_in, bytes_sent, "server bytes_in vs summed client bytes_sent");
    assert_eq!(report.bytes_out, bytes_received, "server bytes_out vs client bytes_received");

    assert_eq!(report.requests, n_clients as u64 * items_per_client);
    assert_eq!(report.connections, n_clients as u64);
    assert_eq!(report.failed_connections, 0, "last_error: {:?}", report.last_error);
    assert_eq!(report.panicked_connections, 0);
    assert_eq!(report.rejected_handshakes, 0);
    assert_eq!(report.rejected_busy, 0);
    assert_eq!(report.shed + report.deadline_expired + report.quarantined, 0);
    assert!(report.clean_shutdown);

    // The batcher only exists on the event-loop path; `PP_EVLOOP=0`
    // (or an unsupported platform) serves per-session regardless of
    // the window, so only the counter agreement above applies there.
    let evloop_active =
        pp_stream::evloop::supported() && std::env::var("PP_EVLOOP").as_deref() != Ok("0");
    if gather_window > Duration::ZERO && evloop_active {
        assert!(
            report.batched_rounds > 0,
            "a nonzero gather window must route jobs through the batcher"
        );
        assert!(report.batched_items >= report.batched_rounds);
    }
}

#[test]
fn soak_smoke_64_sessions_per_session_serving() {
    soak(64, 2, Duration::ZERO);
}

#[test]
fn soak_smoke_64_sessions_cross_session_batched() {
    soak(64, 2, Duration::from_micros(400));
}

#[test]
#[ignore = "full 1k-session soak; run with --ignored (CI runs the 64-session smoke)"]
fn soak_1k_sessions() {
    soak(1000, 2, Duration::from_micros(400));
}
