//! Adversarial-peer integration tests for the per-connection resource
//! governor (DESIGN.md §10): a malicious length prefix must be refused
//! *before* allocation with the server still serving afterwards, and a
//! client that handshakes then never reads its replies must be evicted
//! at the write-backlog cap — cleanly, with its session still
//! resumable through the journal path.

use pp_nn::{zoo, ScaledModel};
use pp_paillier::Keypair;
use pp_stream::encapsulate_with;
use pp_stream::governor::GovernorConfig;
use pp_stream::messages::{
    peek_tag, AcceptMsg, ByeMsg, EncTensorMsg, HelloMsg, MsgTag, ResumeMsg, PROTOCOL_VERSION,
};
use pp_stream::net::{pk_fingerprint, topology_digest};
use pp_stream::{
    FsyncPolicy, JournalConfig, ModelProvider, NetConfig, NetworkedSession, ServeOptions,
};
use pp_stream_runtime::link::NO_DEADLINE;
use pp_stream_runtime::wire::{from_frame, to_frame, WireEncode};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn mlp_model(name: &str) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(17);
    let model = zoo::mlp(name, &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

/// Unique scratch directory per test (no tempfile crate — DESIGN.md's
/// dependency policy).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pp-governor-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Raw wire frame: `seq u64 LE | deadline_ms u64 LE | len u32 LE |
/// payload` — written by hand so tests can lie about any field.
fn write_raw_frame(
    sock: &mut TcpStream,
    seq: u64,
    deadline_ms: u64,
    claimed_len: u32,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(20 + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.extend_from_slice(&claimed_len.to_le_bytes());
    buf.extend_from_slice(payload);
    sock.write_all(&buf)
}

fn send_msg<M: WireEncode>(sock: &mut TcpStream, seq: u64, deadline_ms: u64, msg: &M) {
    let frame = to_frame(msg);
    write_raw_frame(sock, seq, deadline_ms, frame.len() as u32, &frame).expect("send frame");
}

/// Reads one full frame (header + payload) off a raw socket.
fn read_raw_frame(sock: &mut TcpStream) -> std::io::Result<bytes::Bytes> {
    let mut header = [0u8; 20];
    sock.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
    let mut payload = vec![0u8; len];
    sock.read_exact(&mut payload)?;
    Ok(bytes::Bytes::from(payload))
}

/// A structurally valid Hello for `scaled`, built exactly the way the
/// real client builds one (no packing proposal).
fn valid_hello(scaled: &ScaledModel, config: &NetConfig, keypair: &Keypair) -> (HelloMsg, u64) {
    let stages = encapsulate_with(scaled, config.merge_stages).expect("stages");
    let topology = topology_digest(&stages, scaled.factor());
    let pk_n = keypair.public().n().to_bytes_be();
    let hello = HelloMsg {
        version: PROTOCOL_VERSION,
        pk_fingerprint: pk_fingerprint(&pk_n),
        pk_n,
        topology,
        n_stages: stages.len() as u32,
        factor: scaled.factor(),
        pack_slot_bits: 0,
        pack_slots: 0,
        pack_budget: 0,
    };
    (hello, topology)
}

fn connect_raw(addr: SocketAddr) -> TcpStream {
    let sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    sock.set_write_timeout(Some(Duration::from_secs(10))).expect("write timeout");
    sock.set_nodelay(true).expect("nodelay");
    sock
}

fn evloop_enabled() -> bool {
    std::env::var("PP_EVLOOP").map(|v| v != "0").unwrap_or(true)
}

/// The headline oversize scenario: an unauthenticated peer claims a
/// 1 GiB frame with a 20-byte header. The server must refuse it at the
/// pre-auth ceiling — before allocating anything — count it in
/// [`pp_stream::ServeReport::oversize_frames`], and keep serving real
/// clients afterwards. Runs on whichever serving path `PP_EVLOOP`
/// selects; the CI gate exports both.
#[test]
fn oversize_length_prefix_is_refused_and_the_server_survives() {
    let scaled = mlp_model("governor-mlp");
    let mut config = NetConfig::small_test(128);
    config.governor = Some(GovernorConfig {
        max_frame: 1 << 30,
        write_backlog: 64 * 1024 * 1024,
        mem_budget: 1 << 30,
    });
    let provider = Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = provider.serve_forever(listener, ServeOptions::default()).expect("serve");
    let addr = handle.addr();

    // Malicious peer: a header whose length prefix claims 1 GiB,
    // followed by a few junk bytes. The 1 GiB is *under* the blanket
    // max_frame — only the pre-auth ceiling refuses it.
    {
        let mut evil = connect_raw(addr);
        let _ = write_raw_frame(&mut evil, 0, NO_DEADLINE, 1 << 30, &[0xEE; 64]);
        // The server closes on the breach; a short read (not a 1 GiB
        // wait) proves it never tried to consume the claimed payload.
        let mut sink = [0u8; 64];
        let _ = evil.read(&mut sink);
    }

    // And one more claiming the absolute u32 maximum, mid-handshake.
    {
        let mut evil = connect_raw(addr);
        let _ = write_raw_frame(&mut evil, 0, NO_DEADLINE, u32::MAX, b"garbage");
        let mut sink = [0u8; 64];
        let _ = evil.read(&mut sink);
    }

    // The server must still serve a legitimate stream, bit-exact.
    let items: Vec<Tensor<f64>> = (0..3)
        .map(|i| Tensor::from_flat((0..4).map(|j| ((i * 4 + j) as f64 * 0.31).cos()).collect::<Vec<f64>>()))
        .collect();
    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect after attack");
    let (got, _) = session.infer_stream(&items).expect("stream after attack");
    assert_eq!(got.len(), items.len());
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);

    let report = handle.shutdown();
    assert!(
        report.oversize_frames >= 2,
        "both hostile prefixes must be counted: {report:?}"
    );
    assert_eq!(report.panicked_connections, 0, "no panic under attack: {report:?}");
    assert!(report.requests >= items.len() as u64, "real work still served: {report:?}");
}

/// ISSUE satellite: a client that completes the handshake and then
/// never reads a single reply must be evicted once its reply backlog
/// crosses [`GovernorConfig::write_backlog`] — with the `evicted_slow`
/// counter incremented, the session entry *kept* (journal-backed), and
/// a successful resume + clean Bye afterwards. Backlog eviction lives
/// in the readiness event loop, so the test is a no-op under
/// `PP_EVLOOP=0` (the legacy threaded path applies write timeouts
/// instead).
#[test]
fn never_reading_client_is_evicted_then_resumes_cleanly() {
    if !evloop_enabled() {
        eprintln!("skipping: slow-consumer eviction is an event-loop behavior (PP_EVLOOP=0)");
        return;
    }
    let scaled = mlp_model("governor-mlp");
    let mut config = NetConfig::small_test(128);
    // Tiny backlog cap so the eviction fires after the kernel's socket
    // buffers fill; everything else at defaults.
    config.governor = Some(GovernorConfig {
        max_frame: 1 << 30,
        write_backlog: 1024,
        mem_budget: 1 << 30,
    });
    let provider = Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let dir = scratch_dir("slow-consumer");
    let options = ServeOptions {
        journal: Some(JournalConfig { dir: dir.clone(), fsync: FsyncPolicy::Never }),
        ..ServeOptions::default()
    };
    let handle = provider.serve_forever(listener, options).expect("serve");
    let addr = handle.addr();

    let mut rng = StdRng::seed_from_u64(9);
    let keypair = Keypair::generate(128, &mut rng);
    let (hello, topology) = valid_hello(&scaled, &config, &keypair);

    // Handshake like a well-behaved client…
    let mut sock = connect_raw(addr);
    send_msg(&mut sock, 0, NO_DEADLINE, &hello);
    let accept_frame = read_raw_frame(&mut sock).expect("accept");
    assert_eq!(peek_tag(&accept_frame), Some(MsgTag::Accept));
    let accept: AcceptMsg = from_frame(accept_frame).expect("accept msg");
    let session_id = accept.session;

    // …then stop reading forever while flooding requests whose
    // deadline budget is already zero: each one draws a small
    // DeadlineExpired reply without any Paillier work, so the reply
    // backlog grows as fast as we can send. The flood is *sustained* —
    // the kernel's socket buffers on both directions are finite, so the
    // reply stream must eventually overflow into the server's WriteBuf
    // and cross the 1024-byte cap. Eviction closes the socket, which
    // surfaces client-side as a failed write; that write error is the
    // loop's exit. TCP flow control keeps the loop honest: once the
    // request direction's buffers fill, each write waits for the server
    // to process (and answer) earlier frames, so the client cannot
    // outrun the server and quit before the eviction lands.
    let junk_item = |seq: u64| EncTensorMsg {
        seq,
        shape: vec![1],
        obfuscated: false,
        cts: vec![vec![0xAB; 8]],
    };
    let mut evicted_mid_flood = false;
    for i in 0..1_000_000u64 {
        let frame = to_frame(&junk_item(i));
        if write_raw_frame(&mut sock, i + 1, 0, frame.len() as u32, &frame).is_err() {
            evicted_mid_flood = true;
            break;
        }
    }
    assert!(
        evicted_mid_flood,
        "a million unread-reply requests never failed a write: no eviction happened"
    );
    drop(sock);

    // The entry must SURVIVE the eviction (that is the whole point:
    // evicted, not destroyed).
    assert_eq!(provider.active_sessions(), 1, "the evicted session must stay resumable");

    // A well-behaved successor resumes the same session and says Bye.
    let mut sock2 = connect_raw(addr);
    send_msg(
        &mut sock2,
        0,
        NO_DEADLINE,
        &ResumeMsg { version: PROTOCOL_VERSION, session: session_id, items_done: 0, topology },
    );
    let resume_reply = read_raw_frame(&mut sock2).expect("resume accept");
    assert_eq!(
        peek_tag(&resume_reply),
        Some(MsgTag::Accept),
        "the evicted session must accept a resume"
    );
    send_msg(&mut sock2, 1, NO_DEADLINE, &ByeMsg);
    // Bye has no reply; the server closes once the session is removed.
    let mut sink = [0u8; 16];
    let _ = sock2.read(&mut sink);

    // Bye must drain the session table completely.
    let until = Instant::now() + Duration::from_secs(15);
    while provider.active_sessions() != 0 {
        assert!(Instant::now() < until, "session entry leaked after Bye");
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = handle.shutdown();
    assert!(report.evicted_slow >= 1, "the flood must be evicted as slow: {report:?}");
    assert!(report.resumed_sessions >= 1, "the successor must have resumed: {report:?}");
    assert_eq!(report.panicked_connections, 0, "eviction is clean: {report:?}");
    assert!(report.clean_shutdown, "the Bye was honored: {report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
