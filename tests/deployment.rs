//! Deployment-lifecycle integration: persistence, key distribution, and
//! transport optimizations working together — the operational story
//! around the core protocol.

use pp_nn::{zoo, Model, ScaledModel};
use pp_paillier::packing::{PackedCiphertext, PackingSpec};
use pp_paillier::{Keypair, PublicKey, RandomnessPool};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn model_roundtrip_preserves_private_inference() {
    // Train → save → load → deploy: the restored model must produce the
    // same private inferences as the original.
    let mut rng = StdRng::seed_from_u64(1);
    let model = zoo::mlp("persisted", &[4, 6, 3], &mut rng).expect("model");
    let restored = Model::from_bytes(&model.to_bytes()).expect("restore");

    let scaled_a = ScaledModel::from_model(&model, 1_000);
    let scaled_b = ScaledModel::from_model(&restored, 1_000);
    let sa = PpStream::new(scaled_a, PpStreamConfig::small_test(128)).expect("session");
    let sb = PpStream::new(scaled_b, PpStreamConfig::small_test(128)).expect("session");

    let inputs: Vec<Tensor<f64>> = (0..3)
        .map(|i| Tensor::from_flat(vec![0.1 * i as f64, -0.4, 0.7, 0.2]))
        .collect();
    let (ca, _) = sa.classify_stream(&inputs).expect("inference");
    let (cb, _) = sb.classify_stream(&inputs).expect("inference");
    assert_eq!(ca, cb);
}

#[test]
fn key_distribution_via_bytes() {
    // The data provider exports its public key; the model provider
    // imports it and evaluates homomorphically; only the original private
    // key decrypts.
    let mut rng = StdRng::seed_from_u64(2);
    let kp = Keypair::generate(128, &mut rng);
    let wire = kp.public().to_bytes();
    let imported = PublicKey::from_bytes(&wire).expect("import");

    // Model provider side: Σ wᵢ·mᵢ + b on the imported key.
    let ms = [5i64, -3, 8];
    let ws = [2i64, 4, -1];
    let cts: Vec<_> = ms.iter().map(|&m| imported.encrypt_i64(m, &mut rng)).collect();
    let mut acc = imported.encrypt_constant_i64(10);
    for (c, &w) in cts.iter().zip(&ws) {
        acc = imported.add(&acc, &imported.mul_scalar_i64(c, w));
    }
    let want: i64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum::<i64>() + 10;
    assert_eq!(kp.private().decrypt_i64(&acc), want);
}

#[test]
fn randomness_pool_accelerated_encryption_is_compatible() {
    // Pool-precomputed encryption interoperates with ordinary ciphertexts
    // in homomorphic expressions.
    let mut rng = StdRng::seed_from_u64(3);
    let kp = Keypair::generate(128, &mut rng);
    let mut pool = RandomnessPool::new(kp.public());
    pool.refill(3, &mut rng);

    let fast = pool.encrypt_i64(21, &mut rng);
    let slow = kp.public().encrypt_i64(21, &mut rng);
    let sum = kp.public().add(&fast, &slow);
    assert_eq!(kp.private().decrypt_i64(&sum), 42);
}

#[test]
fn packed_transport_carries_a_tensor() {
    // A whole activation vector rides one ciphertext (BatchCrypt [66]);
    // the slot-wise sum of two tensors survives the trip.
    let mut rng = StdRng::seed_from_u64(4);
    let kp = Keypair::generate(512, &mut rng);
    let spec = PackingSpec::for_key(&kp.public(), 32);
    assert!(spec.slots >= 8, "512-bit key should hold ≥ 8 slots");

    let a: Vec<i64> = (0..8).map(|i| i * 1000 - 3500).collect();
    let b: Vec<i64> = (0..8).map(|i| -i * 77).collect();
    let pa = PackedCiphertext::encrypt(&kp.public(), spec, &a, &mut rng).expect("pack");
    let pb = PackedCiphertext::encrypt(&kp.public(), spec, &b, &mut rng).expect("pack");
    let sum = pa.add(&kp.public(), &pb).expect("add");
    let got = sum.decrypt(&kp.private()).expect("decrypt");
    let want: Vec<i64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    assert_eq!(got, want);
}

#[test]
fn avgpool_generality_end_to_end() {
    // The AvgPool extension: a pooling layer that runs homomorphically
    // (no MaxPool replacement needed), matching its scaled reference.
    let mut rng = StdRng::seed_from_u64(5);
    let model = zoo::avgpool_convnet("avg-e2e", (1, 8, 8), 2, 4, &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 100);
    let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).expect("session");
    let input = Tensor::from_vec(
        vec![1, 8, 8],
        (0..64).map(|i| ((i * 11) % 17) as f64 / 17.0 - 0.5).collect(),
    )
    .expect("sized");
    let (out, _) = session.infer_stream(std::slice::from_ref(&input)).expect("inference");
    let want = scaled.forward_scaled(&scaled.scale_input(&input)).expect("reference");
    assert_eq!(out[0].data(), want.data());
}
