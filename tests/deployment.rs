//! Deployment-lifecycle integration: persistence, key distribution, and
//! transport optimizations working together — the operational story
//! around the core protocol.

use pp_nn::{zoo, Model, ScaledModel};
use pp_paillier::packing::{PackedCiphertext, PackingSpec};
use pp_paillier::{Keypair, PublicKey, RandomnessPool};
use pp_stream::messages::{AcceptMsg, HelloMsg, RejectMsg, PROTOCOL_VERSION};
use pp_stream::{
    ItemErrorKind, ItemOutcome, ModelProvider, NetConfig, NetworkedSession, PpStream,
    PpStreamConfig, RejectCode, ServeOptions,
};
use pp_stream_runtime::wire::{from_frame, to_frame};
use pp_stream_runtime::{tcp, TcpConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mlp_model(name: &str, widths: &[usize]) -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp(name, widths, &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn stream_inputs(n: u64, width: usize) -> Vec<Tensor<f64>> {
    (0..n)
        .map(|seq| {
            Tensor::from_flat(
                (0..width as u64)
                    .map(|j| ((seq * width as u64 + j) as f64 * 0.37).sin())
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

#[test]
fn model_roundtrip_preserves_private_inference() {
    // Train → save → load → deploy: the restored model must produce the
    // same private inferences as the original.
    let mut rng = StdRng::seed_from_u64(1);
    let model = zoo::mlp("persisted", &[4, 6, 3], &mut rng).expect("model");
    let restored = Model::from_bytes(&model.to_bytes()).expect("restore");

    let scaled_a = ScaledModel::from_model(&model, 1_000);
    let scaled_b = ScaledModel::from_model(&restored, 1_000);
    let sa = PpStream::new(scaled_a, PpStreamConfig::small_test(128)).expect("session");
    let sb = PpStream::new(scaled_b, PpStreamConfig::small_test(128)).expect("session");

    let inputs: Vec<Tensor<f64>> = (0..3)
        .map(|i| Tensor::from_flat(vec![0.1 * i as f64, -0.4, 0.7, 0.2]))
        .collect();
    let (ca, _) = sa.classify_stream(&inputs).expect("inference");
    let (cb, _) = sb.classify_stream(&inputs).expect("inference");
    assert_eq!(ca, cb);
}

#[test]
fn key_distribution_via_bytes() {
    // The data provider exports its public key; the model provider
    // imports it and evaluates homomorphically; only the original private
    // key decrypts.
    let mut rng = StdRng::seed_from_u64(2);
    let kp = Keypair::generate(128, &mut rng);
    let wire = kp.public().to_bytes();
    let imported = PublicKey::from_bytes(&wire).expect("import");

    // Model provider side: Σ wᵢ·mᵢ + b on the imported key.
    let ms = [5i64, -3, 8];
    let ws = [2i64, 4, -1];
    let cts: Vec<_> = ms.iter().map(|&m| imported.encrypt_i64(m, &mut rng)).collect();
    let mut acc = imported.encrypt_constant_i64(10);
    for (c, &w) in cts.iter().zip(&ws) {
        acc = imported.add(&acc, &imported.mul_scalar_i64(c, w));
    }
    let want: i64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum::<i64>() + 10;
    assert_eq!(kp.private().decrypt_i64(&acc), want);
}

#[test]
fn randomness_pool_accelerated_encryption_is_compatible() {
    // Pool-precomputed encryption interoperates with ordinary ciphertexts
    // in homomorphic expressions.
    let mut rng = StdRng::seed_from_u64(3);
    let kp = Keypair::generate(128, &mut rng);
    let mut pool = RandomnessPool::new(kp.public());
    pool.refill(3, &mut rng);

    let fast = pool.encrypt_i64(21, &mut rng);
    let slow = kp.public().encrypt_i64(21, &mut rng);
    let sum = kp.public().add(&fast, &slow);
    assert_eq!(kp.private().decrypt_i64(&sum), 42);
}

#[test]
fn packed_transport_carries_a_tensor() {
    // A whole activation vector rides one ciphertext (BatchCrypt [66]);
    // the slot-wise sum of two tensors survives the trip.
    let mut rng = StdRng::seed_from_u64(4);
    let kp = Keypair::generate(512, &mut rng);
    let spec = PackingSpec::for_key(&kp.public(), 32).expect("layout fits the key");
    assert!(spec.slots >= 8, "512-bit key should hold ≥ 8 slots");

    let a: Vec<i64> = (0..8).map(|i| i * 1000 - 3500).collect();
    let b: Vec<i64> = (0..8).map(|i| -i * 77).collect();
    let pa = PackedCiphertext::encrypt(&kp.public(), spec, &a, &mut rng).expect("pack");
    let pb = PackedCiphertext::encrypt(&kp.public(), spec, &b, &mut rng).expect("pack");
    let sum = pa.add(&kp.public(), &pb).expect("add");
    let got = sum.decrypt(&kp.private()).expect("decrypt");
    let want: Vec<i64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    assert_eq!(got, want);
}

#[test]
fn avgpool_generality_end_to_end() {
    // The AvgPool extension: a pooling layer that runs homomorphically
    // (no MaxPool replacement needed), matching its scaled reference.
    let mut rng = StdRng::seed_from_u64(5);
    let model = zoo::avgpool_convnet("avg-e2e", (1, 8, 8), 2, 4, &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 100);
    let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).expect("session");
    let input = Tensor::from_vec(
        vec![1, 8, 8],
        (0..64).map(|i| ((i * 11) % 17) as f64 / 17.0 - 0.5).collect(),
    )
    .expect("sized");
    let (out, _) = session.infer_stream(std::slice::from_ref(&input)).expect("inference");
    let want = scaled.forward_scaled(&scaled.scale_input(&input)).expect("reference");
    assert_eq!(out[0].data(), want.data());
}

#[test]
fn networked_loopback_matches_in_process_pipeline() {
    // The acceptance bar for the two-process deployment: run the full
    // handshake + streamed inference over a real 127.0.0.1 socket and
    // require the classifications to equal the in-process pipeline's,
    // bit for bit.
    let scaled = mlp_model("loopback-mlp", &[6, 10, 3]);
    let config = NetConfig::small_test(128);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(3, 6);
    let (classes, report) = session.classify_stream(&inputs).expect("networked inference");
    let transport = report.transport.expect("networked run records transport stats");
    assert!(transport.frames_sent > 0 && transport.frames_received > 0);
    assert!(session.shutdown().clean_shutdown);

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.requests as usize, inputs.len());
    assert!(server_report.clean_shutdown, "server must observe a clean EOF");

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.classify_stream(&inputs).expect("in-process inference");
    assert_eq!(classes, want, "networked classifications must match in-process");
}

#[test]
fn packed_networked_stream_matches_unpacked_in_process() {
    // The acceptance bar for end-to-end ciphertext packing: a networked
    // session that negotiated batch packing must deliver the *same
    // scaled outputs, bit for bit*, as the unpacked in-process pipeline
    // — and actually use the packed protocol (packed rounds on both
    // sides, fewer request frames than items).
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("packed-mlp", &[4, 6, 3], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 100);
    let mut config = NetConfig::small_test(128);
    config.pack_slot_bits = 32; // 128-bit key → 3 slots per ciphertext

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(5, 4); // 3 + 2: one full batch, one partial
    let (outputs, report) = session.infer_stream(&inputs).expect("packed networked inference");
    let transport = report.transport.expect("transport stats");
    assert_eq!(transport.packed_items, 5, "every item must travel packed");
    assert!(transport.packed_rounds > 0, "packed linear rounds must happen");
    assert_eq!(transport.packed_fallbacks, 0, "a healthy run never falls back");
    assert!(session.shutdown().clean_shutdown);

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.requests, 5, "all members complete server-side");
    assert!(server_report.packed_rounds > 0);
    assert_eq!(server_report.packed_aborts, 0);
    assert!(server_report.clean_shutdown);

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.infer_stream(&inputs).expect("in-process inference");
    for (got, want) in outputs.iter().zip(&want) {
        assert_eq!(got.data(), want.data(), "packed outputs must be bit-identical");
    }
}

#[test]
fn infeasible_packing_proposal_degrades_to_unpacked() {
    // An infeasible layout (8-bit slots cannot hold this model's op
    // budget) hard-errors in the in-process API, but a *networked*
    // session degrades silently: the hello proposes nothing, the server
    // echoes slot width 0, and the stream runs per-item with identical
    // results.
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("declined-mlp", &[6, 10, 3], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 100);
    let mut config = NetConfig::small_test(128);
    config.pack_slot_bits = 8;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(3, 6);
    let (classes, report) = session.classify_stream(&inputs).expect("unpacked inference");
    let transport = report.transport.expect("transport stats");
    assert_eq!(transport.packed_items, 0, "declined packing must not be used");
    assert_eq!(transport.packed_fallbacks, 0, "declining is not a fallback");
    assert!(session.shutdown().clean_shutdown);

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.requests as usize, inputs.len());
    assert_eq!(server_report.packed_rounds, 0);

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.classify_stream(&inputs).expect("in-process inference");
    assert_eq!(classes, want);
}

#[test]
fn mid_stream_kill_is_a_transport_error_naming_the_stage() {
    // A server that completes the handshake, then dies before answering
    // the first linear round. The client must report a *transport* error
    // that names the failing stage — never a Decode error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let (mut tx, mut rx) = tcp::accept_on(&listener, &TcpConfig::new()).expect("accept");
        let frame = rx.recv().expect("recv hello").expect("hello frame");
        let hello: HelloMsg = from_frame(frame.payload).expect("decode hello");
        let accept = AcceptMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: hello.pk_fingerprint,
            topology: hello.topology,
            session: 1,
            pack_slot_bits: 0,
        };
        tx.send_payload(to_frame(&accept)).expect("send accept");
        // Connection drops here: the client's first request dies.
    });

    let scaled = mlp_model("killed-mlp", &[6, 10, 3]);
    let config = NetConfig::small_test(128);
    let mut session =
        NetworkedSession::connect(addr, scaled, &config).expect("handshake completes");
    server.join().expect("server thread");

    let inputs = stream_inputs(1, 6);
    let err = session.classify_stream(&inputs).expect_err("peer is gone");
    let text = err.to_string();
    assert!(text.contains("transport error"), "must be a transport error: {text}");
    assert!(text.contains("linear-0@model"), "must name the failing stage: {text}");
    assert!(!text.to_lowercase().contains("decode"), "must never be Decode: {text}");
}

#[test]
fn topology_mismatch_is_rejected_and_server_keeps_serving() {
    // Server and client built against different architectures: the
    // handshake must fail fast with a reason naming the topology — and
    // the server must shrug it off and serve the next, well-built client
    // to completion.
    let server_model = mlp_model("server-mlp", &[6, 10, 3]);
    let client_model = mlp_model("client-mlp", &[6, 8, 3]);
    let config = NetConfig::small_test(128);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&server_model, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener));

    let err = NetworkedSession::connect(addr, client_model, &config)
        .map(|_| ())
        .expect_err("mismatched topology must be rejected");
    let text = err.to_string();
    assert!(text.contains("rejected handshake"), "{text}");
    assert!(text.contains("topology"), "reason must name the mismatch: {text}");

    // The rejection must not have taken the server down.
    let mut session = NetworkedSession::connect(addr, server_model, &config)
        .expect("matching client connects after the rejection");
    let inputs = stream_inputs(1, 6);
    session.classify_stream(&inputs).expect("inference after a rejected peer");
    assert!(session.shutdown().clean_shutdown);

    let report = server.join().expect("server thread").expect("server survives rejections");
    assert_eq!(report.rejected_handshakes, 1, "the mismatch was counted, not fatal");
    assert_eq!(report.requests, 1);
    assert!(report.clean_shutdown);
}

#[test]
fn supervised_server_isolates_bad_clients() {
    // serve_forever: a garbage-speaking client and three concurrent good
    // clients share one supervised server; the bad one is counted and
    // isolated, the good ones all complete, and shutdown drains cleanly.
    let scaled = mlp_model("fleet-mlp", &[6, 10, 3]);
    let config = NetConfig::small_test(128);
    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = provider.serve_forever(listener, ServeOptions::default()).expect("spawn server");
    let addr = handle.addr();

    // A client that never speaks the protocol: one garbage frame.
    let (mut gtx, mut grx) = tcp::connect(addr).expect("garbage client connects");
    gtx.send_payload(bytes::Bytes::from_static(b"\xffnot a handshake")).expect("send garbage");
    let reply = grx.recv().expect("reject reply").expect("reject frame");
    let reject: RejectMsg = from_frame(reply.payload).expect("decode reject");
    assert!(reject.reason.contains("hello"), "{}", reject.reason);
    drop(gtx);
    drop(grx);

    // Three well-behaved clients, concurrently.
    let mut clients = Vec::new();
    for _ in 0..3 {
        let scaled = scaled.clone();
        let config = config.clone();
        clients.push(std::thread::spawn(move || {
            let mut session =
                NetworkedSession::connect(addr, scaled, &config).expect("connect + handshake");
            let inputs = stream_inputs(2, 6);
            let (classes, _) = session.classify_stream(&inputs).expect("inference");
            assert!(session.shutdown().clean_shutdown);
            classes
        }));
    }
    let results: Vec<Vec<usize>> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]), "same inputs, same classes");

    let report = handle.shutdown();
    assert_eq!(report.connections, 4, "three good clients plus one garbage client");
    assert_eq!(report.rejected_handshakes, 1);
    assert_eq!(report.requests, 6, "3 clients x 2 items each");
    assert_eq!(report.failed_connections, 0);
    assert_eq!(report.panicked_connections, 0);
    assert!(report.clean_shutdown);
}

#[test]
fn zero_deadline_sheds_every_item_client_side() {
    // An already-expired budget must shed each item before any bytes
    // move: the session survives, every outcome is `DeadlineExpired`,
    // and the server never sees a request.
    let scaled = mlp_model("deadline-zero-mlp", &[4, 6, 3]);
    let mut config = NetConfig::small_test(128);
    config.item_deadline = Some(std::time::Duration::ZERO);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(5, 4);
    let (outcomes, report) =
        session.infer_stream_partial(&inputs).expect("the session survives total expiry");
    assert!(
        outcomes.iter().all(|o| matches!(
            o,
            ItemOutcome::Failed { kind: ItemErrorKind::DeadlineExpired, .. }
        )),
        "every item must expire"
    );
    let transport = report.transport.expect("transport stats");
    assert_eq!(transport.deadline_expired, 5);

    // The strict API turns the same per-item expiry into a hard error.
    let err = session.infer_stream(&inputs).expect_err("strict mode rejects expired items");
    assert!(err.to_string().contains("DeadlineExpired"), "{err}");
    assert!(session.shutdown().clean_shutdown);

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.requests, 0, "expired items never reach the wire");
    assert_eq!(server_report.deadline_expired, 0, "the shed happened client-side");
    assert!(server_report.clean_shutdown);
}

#[test]
fn sub_millisecond_budget_expires_at_the_server() {
    // A 1ms budget survives the client's own pre-send check (local prep
    // is microseconds) but truncates to a zero-millisecond remaining
    // budget on the wire, so the *server* sheds the item with a per-item
    // `DeadlineExpired` reply — and the session keeps streaming.
    let scaled = mlp_model("deadline-wire-mlp", &[4, 6, 3]);
    let mut config = NetConfig::small_test(128);
    config.item_deadline = Some(std::time::Duration::from_millis(1));

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(16, 4);
    let (outcomes, _) =
        session.infer_stream_partial(&inputs).expect("the session survives total expiry");
    assert!(
        outcomes.iter().all(|o| matches!(
            o,
            ItemOutcome::Failed { kind: ItemErrorKind::DeadlineExpired, .. }
        )),
        "every item must expire — a 1ms budget cannot fund a Paillier round trip"
    );
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert_eq!(transport.deadline_expired, 16);

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert!(
        server_report.deadline_expired > 0,
        "at least one expiry must be the server's verdict (budget arrived already spent)"
    );
    assert!(server_report.deadline_expired <= 16);
    assert_eq!(server_report.requests, 0, "no item's linear rounds ever complete");
}

#[test]
fn generous_deadline_and_watchdog_leave_the_stream_untouched() {
    // Deadline stamping rides every linear-round frame: with a generous
    // budget and stall window the deployment must behave exactly as if
    // both were off — bit-identical results, zero overload counters.
    let scaled = mlp_model("deadline-ok-mlp", &[6, 10, 3]);
    let mut config = NetConfig::small_test(128);
    config.item_deadline = Some(std::time::Duration::from_secs(30));
    config.stall_window = Some(std::time::Duration::from_secs(30));

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(3, 6);
    let (classes, report) = session.classify_stream(&inputs).expect("networked inference");
    let transport = report.transport.expect("transport stats");
    assert_eq!(transport.deadline_expired, 0);
    assert_eq!(transport.stalls, 0);
    assert_eq!(transport.shed, 0);
    assert_eq!(transport.quarantined, 0);
    assert!(session.shutdown().clean_shutdown);

    let server_report = server.join().expect("server thread");
    assert_eq!(server_report.requests as usize, inputs.len());
    assert_eq!(server_report.deadline_expired + server_report.shed + server_report.quarantined, 0);
    assert!(server_report.clean_shutdown);

    let mut local_cfg = PpStreamConfig::small_test(128);
    local_cfg.seed = config.seed;
    let local = PpStream::new(scaled, local_cfg).expect("in-process session");
    let (want, _) = local.classify_stream(&inputs).expect("in-process inference");
    assert_eq!(classes, want, "deadline stamping must not perturb the protocol");
}

#[test]
fn zero_inflight_cap_sheds_every_item() {
    // With the per-session in-flight cap at zero, every round-0 arrival
    // is over the cap: the server must answer each with a per-item
    // `Shed` reply instead of queueing or failing the session.
    let scaled = mlp_model("shed-mlp", &[4, 6, 3]);
    let mut config = NetConfig::small_test(128);
    config.max_inflight_items = 0;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let provider = ModelProvider::new(&scaled, &config).expect("provider");
    let server = std::thread::spawn(move || provider.serve_listener(&listener).expect("serve"));

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let inputs = stream_inputs(4, 4);
    let (outcomes, _) =
        session.infer_stream_partial(&inputs).expect("the session survives total shedding");
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o, ItemOutcome::Failed { kind: ItemErrorKind::Shed, .. })),
        "every item must be shed at a zero cap"
    );
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);
    assert_eq!(transport.shed, 4);

    let server_report = server.join().expect("server thread");
    assert!(server_report.clean_shutdown);
    assert_eq!(server_report.shed, transport.shed, "both sides count every shed item");
    assert_eq!(server_report.requests, 0);
}

#[test]
fn empty_stream_resolves_zero_items() {
    // Regression: a stream that resolves zero items used to divide by
    // `latencies.len()` computing `mean_latency` and panic. An empty
    // input slice must return an empty outcome list with a zero mean,
    // and an all-items-shed zero-deadline run must resolve every item
    // without panicking either.
    let scaled = mlp_model("empty-mlp", &[4, 6, 3]);
    let config = NetConfig::small_test(128);
    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = provider.serve_forever(listener, ServeOptions::default()).expect("spawn server");
    let addr = handle.addr();

    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect + handshake");
    let (classes, report) = session.classify_stream_partial(&[]).expect("empty stream is legal");
    assert!(classes.is_empty(), "zero inputs, zero outcomes");
    assert_eq!(report.mean_latency, std::time::Duration::ZERO, "no items, no mean");
    assert!(report.latencies.is_empty());
    assert!(session.shutdown().clean_shutdown);

    // Same guarantee when every item is shed before any latency-free
    // path could divide: an already-expired budget fails each item
    // individually and the call still returns.
    let mut expired = config.clone();
    expired.item_deadline = Some(std::time::Duration::ZERO);
    let mut session =
        NetworkedSession::connect(addr, scaled, &expired).expect("connect + handshake");
    let inputs = stream_inputs(3, 4);
    let (classes, _) = session.classify_stream_partial(&inputs).expect("total expiry survives");
    assert_eq!(classes, vec![None, None, None], "every item fails individually");
    assert!(session.shutdown().clean_shutdown);

    let report = handle.shutdown();
    assert_eq!(report.requests, 0, "neither stream put an item on the wire");
    assert!(report.clean_shutdown);
}

#[test]
fn busy_flood_is_bounded_and_server_stays_responsive() {
    // Admission control under a hello flood: one occupant fills the
    // single session slot; 64 more connections all get a Busy rejection
    // (none hangs, none is dropped on the floor), the occupant keeps
    // streaming throughout, and the counters balance exactly.
    let scaled = mlp_model("flood-mlp", &[4, 6, 3]);
    let config = NetConfig::small_test(128);
    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options = ServeOptions { max_sessions: Some(1), ..ServeOptions::default() };
    let handle = provider.serve_forever(listener, options).expect("spawn server");
    let addr = handle.addr();

    let mut session =
        NetworkedSession::connect(addr, scaled, &config).expect("occupant takes the only slot");
    let inputs = stream_inputs(2, 4);
    session.classify_stream(&inputs[..1]).expect("occupant streams before the flood");

    for i in 0..64 {
        let (mut tx, mut rx) = tcp::connect(addr).expect("flood client connects");
        tx.send_payload(bytes::Bytes::from_static(b"\x01hello-ish")).expect("send opener");
        let reply = rx.recv().expect("busy reply").expect("one reject frame");
        let reject: RejectMsg = from_frame(reply.payload).expect("decode reject");
        assert_eq!(reject.code, RejectCode::Busy, "flood client {i} must be busy-rejected");
        assert!(reject.reason.contains("capacity"), "{}", reject.reason);
        assert!(reject.retry_after_ms > 0, "backoff hint rides the rejection");
    }

    session.classify_stream(&inputs[1..]).expect("occupant streams after the flood");
    assert!(session.shutdown().clean_shutdown);

    let report = handle.shutdown();
    assert_eq!(report.connections, 65, "occupant plus 64 flooders");
    assert_eq!(report.rejected_busy, 64, "every flooder was rejected, none leaked");
    assert_eq!(report.requests, 2, "the occupant's stream was untouched by the flood");
    assert_eq!(report.failed_connections, 0);
    assert_eq!(report.rejected_handshakes, 0, "busy rejection is not a handshake failure");
    assert!(report.clean_shutdown);
}

#[test]
fn threaded_rejecter_flood_cannot_spawn_unbounded_threads() {
    // Regression for the legacy thread-per-connection supervisor:
    // `reject_busy` used to spawn one detached thread per over-capacity
    // connection with no cap and no read-timeout bound, so a slow-loris
    // flood of silent connects grew threads without limit. The cap is 32
    // concurrent rejecters; beyond it connections close unanswered.
    let Ok(dir) = std::fs::read_dir("/proc/self/task") else {
        return; // no /proc thread accounting on this platform
    };
    let baseline = dir.count();

    let scaled = mlp_model("loris-mlp", &[4, 6, 3]);
    let config = NetConfig::small_test(128);
    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options =
        ServeOptions { max_sessions: Some(1), legacy_threaded: true, ..ServeOptions::default() };
    let handle = provider.serve_forever(listener, options).expect("spawn server");
    let addr = handle.addr();

    let mut session = NetworkedSession::connect(addr, scaled, &config).expect("occupant");

    // 96 slow-loris clients: connect, never send the hello the rejecter
    // wants to drain, never read — each held socket pins its rejecter
    // until the drain bound trips.
    let held: Vec<std::net::TcpStream> =
        (0..96).filter_map(|_| std::net::TcpStream::connect(addr).ok()).collect();
    assert!(held.len() >= 90, "the flood must mostly connect");

    // Sample the process thread count while the flood is being absorbed.
    let mut peak = 0usize;
    for _ in 0..20 {
        if let Ok(dir) = std::fs::read_dir("/proc/self/task") {
            peak = peak.max(dir.count());
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let cap = 32; // MAX_REJECTERS in crates/core/src/net.rs
    assert!(
        peak <= baseline + cap + 16,
        "rejecter threads must be capped: baseline {baseline}, peak {peak}"
    );

    session.classify_stream(&stream_inputs(1, 4)).expect("occupant survives the flood");
    assert!(session.shutdown().clean_shutdown);
    drop(held);

    let report = handle.shutdown();
    // Every accepted flooder was counted as a busy rejection at the
    // acceptor, whether or not a rejecter thread answered it.
    assert_eq!(report.rejected_busy, report.connections - 1, "all non-occupants were rejected");
    assert!(report.rejected_busy >= 33, "the flood must overrun the rejecter cap");
    assert_eq!(report.requests, 1);
    assert!(report.clean_shutdown);
}

#[test]
fn shutdown_latency_is_bounded_by_wakeup_not_poll_interval() {
    // Regression: `ServerHandle::stop` used to be observed only when a
    // `poll_interval` sleep expired, so a coarse interval meant a slow
    // drain. The event loop sleeps in its poller and `shutdown()` wakes
    // it explicitly; the legacy supervisor slices its idle sleeps to
    // observe the flag — a 5s interval must not cost 5s of shutdown on
    // either path.
    let scaled = mlp_model("drain-mlp", &[4, 6, 3]);
    let config = NetConfig::small_test(128);
    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options =
        ServeOptions { poll_interval: std::time::Duration::from_secs(5), ..ServeOptions::default() };
    let handle = provider.serve_forever(listener, options).expect("spawn server");

    // One served-and-closed session proves the loop is live (not stuck
    // in a startup path that would make a fast shutdown vacuous).
    let mut session =
        NetworkedSession::connect(handle.addr(), scaled, &config).expect("connect + handshake");
    session.classify_stream(&stream_inputs(1, 4)).expect("inference");
    assert!(session.shutdown().clean_shutdown);

    let t0 = std::time::Instant::now();
    let report = handle.shutdown();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "stop must wake the acceptor and shards, not wait out poll_interval: {elapsed:?}"
    );
    assert_eq!(report.requests, 1);
    assert!(report.clean_shutdown);
}
