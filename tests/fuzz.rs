//! Seeded structure-aware wire-fuzz harness (requires the
//! `fault-injection` feature, which provides
//! [`pp_stream_runtime::fuzz`]).
//!
//! A corpus of *valid recorded* frames — a real handshake Hello,
//! tensor requests, Ack, Bye — is mutated by
//! [`pp_stream_runtime::fuzz::WireFuzzer`] (length-prefix inflation,
//! truncation, bit flips, header field swaps, reorder/replay,
//! mid-handshake garbage) and each mutated byte stream is written at a
//! live [`ModelProvider`]. The properties under test:
//!
//! 1. **No panic** — `ServeReport::panicked_connections == 0` after
//!    every hostile stream.
//! 2. **No hang** — every case completes within a watchdog window
//!    (hostile streams get short socket timeouts; a case that exceeds
//!    the watchdog fails the run).
//! 3. **Bounded allocation** — inflated length prefixes are refused at
//!    the governor's ceiling (`oversize_frames` counts them); the
//!    1 GiB-claim cases complete in milliseconds, not after a 1 GiB
//!    read.
//! 4. **Liveness** — after the whole campaign, a real client completes
//!    a stream against the same server.
//!
//! Deterministic per seed: `PP_FUZZ_SEED=<n>` (default 11) replays the
//! exact campaign. `scripts/ci.sh --fuzz-gate` runs ≥2 fixed seeds on
//! both `PP_EVLOOP` paths.

use pp_nn::{zoo, ScaledModel};
use pp_paillier::Keypair;
use pp_stream::encapsulate_with;
use pp_stream::governor::GovernorConfig;
use pp_stream::messages::{AckMsg, ByeMsg, EncTensorMsg, HelloMsg, PROTOCOL_VERSION};
use pp_stream::net::{pk_fingerprint, topology_digest};
use pp_stream::{ModelProvider, NetConfig, NetworkedSession, ServeOptions};
use pp_stream_runtime::fuzz::{Mutation, RawFrame, WireFuzzer};
use pp_stream_runtime::wire::to_frame;
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Mutated cases per campaign. With 1–3 mutations each, a campaign
/// exercises every mutation class many times over (the fuzz module's
/// own unit tests prove all classes reachable well under this count).
const CASES: u64 = 64;

/// Hard per-case watchdog: a hostile stream must be fully absorbed or
/// rejected well inside this window (socket timeouts are 2 s).
const WATCHDOG: Duration = Duration::from_secs(20);

fn fuzz_seed() -> u64 {
    std::env::var("PP_FUZZ_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(11)
}

fn mlp_model() -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(29);
    let model = zoo::mlp("fuzz-mlp", &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

/// The valid corpus: exactly the frames a well-behaved client would
/// send, recorded as [`RawFrame`]s. The tensor payloads carry junk
/// ciphertexts — structurally valid, semantically garbage — because the
/// interesting surface is decode and state-machine handling, not
/// Paillier arithmetic. Their zero deadline budget means the server
/// answers each without executing anything.
fn corpus(scaled: &ScaledModel, config: &NetConfig) -> Vec<RawFrame> {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xC0FF_EE);
    let keypair = Keypair::generate(128, &mut rng);
    let stages = encapsulate_with(scaled, config.merge_stages).expect("stages");
    let topology = topology_digest(&stages, scaled.factor());
    let pk_n = keypair.public().n().to_bytes_be();
    let hello = HelloMsg {
        version: PROTOCOL_VERSION,
        pk_fingerprint: pk_fingerprint(&pk_n),
        pk_n,
        topology,
        n_stages: stages.len() as u32,
        factor: scaled.factor(),
        pack_slot_bits: 0,
        pack_slots: 0,
        pack_budget: 0,
    };

    let mut frames = vec![RawFrame::new(0, to_frame(&hello).to_vec())];
    for i in 0..4u64 {
        let item = EncTensorMsg {
            seq: i,
            shape: vec![2],
            obfuscated: false,
            cts: vec![vec![0x5A; 16], vec![0xA5; 16]],
        };
        let mut f = RawFrame::new(i + 1, to_frame(&item).to_vec());
        f.deadline_ms = 0; // expires on arrival: replied to, never executed
        frames.push(f);
    }
    frames.push(RawFrame::new(5, to_frame(&AckMsg { items_done: 2 }).to_vec()));
    frames.push(RawFrame::new(6, to_frame(&ByeMsg).to_vec()));
    frames
}

/// Fires one mutated byte stream at the server: write it all (partial
/// writes and resets are fine — the server may reject mid-stream),
/// then drain whatever the server answers until EOF/timeout. Runs on
/// a thread so the parent can enforce the watchdog.
fn fire(addr: SocketAddr, stream_bytes: Vec<u8>) {
    let Ok(mut sock) = TcpStream::connect(addr) else { return };
    let _ = sock.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = sock.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = sock.set_nodelay(true);
    let _ = sock.write_all(&stream_bytes);
    let _ = sock.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    while let Ok(n) = sock.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

/// The campaign. Runs under whichever serving path `PP_EVLOOP`
/// selects; the CI fuzz gate exports both values across ≥2 seeds.
#[test]
fn seeded_wire_fuzzing_never_panics_hangs_or_overallocates() {
    let scaled = mlp_model();
    let mut config = NetConfig::small_test(128);
    // Pin the governor so a CI host's environment cannot change what
    // "bounded" means mid-campaign. The max_frame is the blanket 1 GiB:
    // inflated prefixes must be caught by the *negotiated* ceilings,
    // not the outer fence.
    config.governor = Some(GovernorConfig {
        max_frame: 1 << 30,
        write_backlog: 64 * 1024 * 1024,
        mem_budget: 1 << 30,
    });
    // Hostile peers stall mid-frame; short server-side socket timeouts
    // keep the drain bounded without a reaper thread.
    config.tcp = config.tcp.clone().with_timeouts(Duration::from_secs(2), Duration::from_secs(2));
    let provider = Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = provider.serve_forever(listener, ServeOptions::default()).expect("serve");
    let addr = handle.addr();

    let frames = corpus(&scaled, &config);
    let base_seed = fuzz_seed();
    let mut inflate_cases = 0u64;
    for case in 0..CASES {
        let mut fuzzer = WireFuzzer::new(base_seed.wrapping_mul(0x10001).wrapping_add(case));
        let mutated = fuzzer.mutate_stream(&frames);
        if mutated.has(Mutation::InflateLen) {
            inflate_cases += 1;
        }
        // Watchdog: the case runs on a thread; if it exceeds the
        // window, the server (or the drain) is hung — fail loudly
        // with the seed that reproduces it.
        let (done_tx, done_rx) = mpsc::channel();
        let bytes = mutated.bytes.clone();
        std::thread::spawn(move || {
            fire(addr, bytes);
            let _ = done_tx.send(());
        });
        assert!(
            done_rx.recv_timeout(WATCHDOG).is_ok(),
            "case {case} (seed {base_seed}, mutations {:?}) exceeded the {WATCHDOG:?} watchdog",
            mutated.mutations
        );
    }
    assert!(inflate_cases > 0, "the campaign must include inflated-prefix cases");

    // Liveness: the fuzz barrage must leave the server able to serve a
    // real stream, bit-exact against local inference.
    let items: Vec<Tensor<f64>> = (0..2)
        .map(|i| {
            Tensor::from_flat((0..4).map(|j| ((i * 4 + j) as f64 * 0.23).sin()).collect::<Vec<f64>>())
        })
        .collect();
    let mut session =
        NetworkedSession::connect(addr, scaled.clone(), &config).expect("connect after campaign");
    let (got, _) = session.infer_stream(&items).expect("stream after campaign");
    assert_eq!(got.len(), items.len());
    let transport = session.shutdown();
    assert!(transport.clean_shutdown);

    let report = handle.shutdown();
    assert_eq!(
        report.panicked_connections, 0,
        "seed {base_seed}: a mutated stream panicked a worker: {report:?}"
    );
    // Inflated prefixes above the negotiated/pre-auth ceiling are the
    // common case for InflateLen (the mutation's smallest lie is
    // real+1+ε which can slip under); at least some of the campaign's
    // inflations must have hit the governor.
    assert!(
        report.oversize_frames > 0,
        "seed {base_seed}: {inflate_cases} inflate cases produced no FrameLimit rejection: {report:?}"
    );
}
