//! End-to-end integration: train → scale → deploy → stream, across all
//! workspace crates.

use pp_nn::{choose_scaling_factor, zoo, ScaledModel, TrainConfig, Trainer};
use pp_stream::baseline::{cipher_base, plain_base};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Train a small healthcare model on the Breast stand-in dataset.
fn trained_breast_model(seed: u64) -> (pp_nn::Model, pp_datasets::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = pp_datasets::breast(seed).subsample(0.35);
    let mut model = zoo::healthcare_3fc("Breast", 30, &mut rng).expect("model");
    let mut trainer = Trainer::new(TrainConfig {
        learning_rate: 0.1,
        epochs: 15,
        batch_size: 16,
        momentum: 0.9,
    });
    trainer.train(&mut model, &data.train, &mut rng).expect("training");
    (model, data)
}

#[test]
fn trained_model_private_inference_matches_plaintext() {
    let (model, data) = trained_breast_model(1);
    assert!(model.accuracy(&data.train).unwrap() > 0.9, "training failed");

    let report = choose_scaling_factor(&model, &data.train, 1e-4, 6).expect("scaling");
    let scaled = ScaledModel::from_model(&model, report.factor.max(100));

    let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).expect("session");
    let inputs: Vec<Tensor<f64>> = data.test.iter().take(8).map(|(x, _)| x.clone()).collect();
    let (classes, run) = session.classify_stream(&inputs).expect("inference");

    for (input, &c) in inputs.iter().zip(&classes) {
        assert_eq!(c, scaled.classify_scaled(input).expect("reference"));
    }
    assert_eq!(run.latencies.len(), inputs.len());
    assert!(run.makespan >= *run.latencies.iter().max().unwrap());
}

#[test]
fn pipeline_and_cipher_base_agree() {
    let mut rng = StdRng::seed_from_u64(2);
    let model = zoo::mlp("m", &[5, 8, 3], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 1_000);
    let inputs: Vec<Tensor<f64>> = (0..3)
        .map(|i| Tensor::from_flat((0..5).map(|j| ((i * 5 + j) as f64 * 0.7).sin()).collect::<Vec<_>>()))
        .collect();

    let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).expect("session");
    let (stream_classes, _) = session.classify_stream(&inputs).expect("pipeline");
    let (cipher_classes, _) = cipher_base(&scaled, 128, 7, &inputs).expect("cipher base");
    let (plain_classes, _) = plain_base(&model, &inputs).expect("plain base");

    assert_eq!(stream_classes, cipher_classes, "pipeline vs centralized ciphertext");
    // With a comfortable scaling factor the scaled path agrees with float.
    assert_eq!(stream_classes, plain_classes, "private vs plaintext");
}

#[test]
fn streaming_many_requests_preserves_order_and_results() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = zoo::mlp("m", &[4, 6, 2], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 100);
    let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).expect("session");

    let inputs: Vec<Tensor<f64>> = (0..10)
        .map(|i| Tensor::from_flat(vec![(i as f64).sin(), (i as f64).cos(), 0.1 * i as f64, -0.5]))
        .collect();
    let (outputs, _) = session.infer_stream(&inputs).expect("stream");
    assert_eq!(outputs.len(), 10);
    for (input, out) in inputs.iter().zip(&outputs) {
        let want = scaled.forward_scaled(&scaled.scale_input(input)).expect("reference");
        assert_eq!(out.data(), want.data(), "results must arrive in request order");
    }
}

#[test]
fn mixed_layer_model_runs_privately() {
    // ScaledSigmoid exercises the mixed-layer decomposition (Sec. IV-B).
    let mut rng = StdRng::seed_from_u64(4);
    let model = pp_nn::Model::new(
        "mixed",
        vec![4],
        vec![
            zoo::dense_layer(&mut rng, 4, 6),
            pp_nn::Layer::ScaledSigmoid { alpha: 1.5 },
            zoo::dense_layer(&mut rng, 6, 3),
            pp_nn::Layer::SoftMax,
        ],
    )
    .expect("model");
    let scaled = ScaledModel::from_model(&model, 1_000);
    let session = PpStream::new(scaled.clone(), PpStreamConfig::small_test(128)).expect("session");
    let input = Tensor::from_flat(vec![0.4, -0.8, 0.2, 0.6]);
    let (outputs, _) = session.infer_stream(std::slice::from_ref(&input)).expect("inference");
    let want = scaled.forward_scaled(&scaled.scale_input(&input)).expect("reference");
    assert_eq!(outputs[0].data(), want.data());
}

#[test]
fn larger_scaling_factor_tracks_float_model_more_closely() {
    let (model, data) = trained_breast_model(5);
    let sample: Vec<(Tensor<f64>, usize)> = data.test.iter().take(30).cloned().collect();
    let plain_acc = model.accuracy(&sample).expect("accuracy");

    let mut accs = Vec::new();
    for f in [1i64, 100, 10_000] {
        let scaled = ScaledModel::from_model(&model, f);
        let correct = sample
            .iter()
            .filter(|(x, y)| scaled.classify_scaled(x).expect("scaled") == *y)
            .count();
        accs.push(correct as f64 / sample.len() as f64);
    }
    // The Table IV/V trend: accuracy improves (weakly) with the factor
    // and converges to the float model's.
    assert!(accs[2] >= accs[0], "accs={accs:?}");
    assert!((accs[2] - plain_acc).abs() < 0.15, "accs={accs:?} plain={plain_acc}");
}
