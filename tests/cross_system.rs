//! Cross-system integration: PP-Stream, the centralized baselines, and
//! the EzPC-style mini-ABY baseline must all agree on classifications.

use pp_mpc::nn::SecureInference;
use pp_nn::{zoo, ScaledModel};
use pp_stream::baseline::{cipher_base, plain_base};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_four_systems_agree() {
    let mut rng = StdRng::seed_from_u64(1);
    let model = zoo::mlp("m", &[6, 10, 4], &mut rng).expect("model");
    let scaled = ScaledModel::from_model(&model, 10_000);

    let inputs: Vec<Tensor<f64>> = (0..3)
        .map(|i| {
            Tensor::from_flat(
                (0..6)
                    .map(|j| ((i * 6 + j) as f64 * 0.53).sin() * 0.9)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

    let (plain, _) = plain_base(&model, &inputs).expect("plain");
    let (cipher, _) = cipher_base(&scaled, 128, 3, &inputs).expect("cipher");
    let session = PpStream::new(scaled, PpStreamConfig::small_test(128)).expect("session");
    let (stream, _) = session.classify_stream(&inputs).expect("stream");

    let mut mpc = SecureInference::new(model, 5);
    let mpc_classes: Vec<usize> = inputs
        .iter()
        .map(|x| {
            let (out, _) = mpc.infer(x).expect("mpc");
            pp_nn::activation::argmax(&out)
        })
        .collect();

    assert_eq!(plain, cipher, "plain vs cipher-base");
    assert_eq!(plain, stream, "plain vs pp-stream");
    assert_eq!(plain, mpc_classes, "plain vs mini-ABY");
}

#[test]
fn mpc_cost_structure_shows_protocol_switching() {
    // The paper's Exp#6 diagnosis: EzPC pays per-element protocol
    // switches. Verify the cost report reflects exactly one garbled
    // circuit per ReLU element.
    let mut rng = StdRng::seed_from_u64(2);
    let model = zoo::mlp("m", &[4, 12, 3], &mut rng).expect("model");
    let relu_elems = 12;
    let mut mpc = SecureInference::new(model, 7);
    let x = Tensor::from_flat(vec![0.2, -0.4, 0.6, -0.8]);
    let (_, cost) = mpc.infer(&x).expect("mpc");
    assert_eq!(cost.gc_executions, relu_elems);
    // Each dense layer consumes in×out triples.
    assert_eq!(cost.triples, 4 * 12 + 12 * 3);
}

#[test]
fn pp_stream_has_no_per_element_protocol_switch() {
    // PP-Stream's cross-provider messages scale with rounds (stages),
    // not with non-linear element counts: one crossing per stage.
    let mut rng = StdRng::seed_from_u64(3);
    let wide = zoo::mlp("wide", &[4, 64, 3], &mut rng).expect("model");
    let narrow = zoo::mlp("narrow", &[4, 8, 3], &mut rng).expect("model");
    let count_stages = |m: &pp_nn::Model| {
        let scaled = ScaledModel::from_model(m, 100);
        pp_stream::encapsulate(&scaled).expect("stages").len()
    };
    assert_eq!(
        count_stages(&wide),
        count_stages(&narrow),
        "round count is independent of layer width"
    );
}
